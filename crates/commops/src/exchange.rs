//! Symmetric-exchange co-simulation: two nodes, two links, every engine of
//! the chosen implementation style running against one shared memory path
//! per node.

use memcomm_machines::Machine;
use memcomm_memsim::clock::Cycle;
use memcomm_memsim::engines::{Cpu, CpuReceiver, CpuSender, DepositEngine, DepositMode, Step};
use memcomm_memsim::node::Watchdog;
use memcomm_memsim::{Measurement, Node, SimError, SimResult};
use memcomm_model::AccessPattern;
use memcomm_netsim::Link;

use crate::layout::{ExchangeLayout, WalkSpec};
use crate::roles::{CpuDuties, DmaChunkQueue, PipelinedCpu};

/// The two implementation families of `xQy` (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// `xQy = xC1 ∘ (send ‖ Nd ‖ receive) ∘ 1Cy` — pack, move block,
    /// unpack.
    BufferPacking,
    /// `xQ'y = xS0 ‖ Nadp ‖ 0Dy` — direct transfer, addresses on the wire
    /// for non-contiguous destinations.
    Chained,
}

/// Parameters of an exchange measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeConfig {
    /// Payload words each node sends (and receives).
    pub words: u64,
    /// Pipelining chunk for buffer packing: `None` is store-and-forward
    /// (pack the whole message, send it, unpack it — what PVM-era libraries
    /// did); `Some(c)` pipelines at chunk granularity (the ablation of
    /// DESIGN.md).
    pub chunk_words: Option<u64>,
    /// Network congestion factor; `None` uses the machine's representative
    /// value (2).
    pub congestion: Option<f64>,
    /// Whether both nodes send simultaneously. The paper's T3D numbers are
    /// symmetric (every node sends and receives, as in a transpose step);
    /// its Paragon measurements "did not run sending and receiving
    /// simultaneously at each node" — half duplex.
    pub full_duplex: bool,
    /// Expert buffer packing skips the gather (scatter) copy when the
    /// source (destination) pattern is already contiguous; PVM-style
    /// libraries never do (Section 3.4: "message passing libraries like PVM
    /// force the programmer to copy the data elements in all cases").
    pub elide_contiguous_copies: bool,
    /// Seed for indexed patterns.
    pub seed: u64,
    /// Simulated-cycle budget: the exchange fails with
    /// [`SimError::CycleBudget`] instead of running past it. `None` leaves
    /// only the step-bound watchdog.
    pub max_cycles: Option<Cycle>,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            words: 8192,
            chunk_words: None,
            congestion: None,
            full_duplex: true,
            elide_contiguous_copies: false,
            seed: 0x5EED,
            max_cycles: None,
        }
    }
}

/// Per-stage completion cycles of one exchange, in pipeline order. This is
/// pure simulation data (deterministic, independent of observability), so
/// it may enter byte-deterministic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimeline {
    /// Cycle each stage *finished*, indexed by [`PhaseTimeline::STAGES`].
    /// `0` means the stage did not occur in this configuration (e.g. no
    /// pack stage in a chained transfer).
    pub completion: [Cycle; 5],
}

impl PhaseTimeline {
    /// Stage names, in pipeline order: pack the send buffer, feed the NIC,
    /// cross the wire, deposit into the receive side, unpack into place.
    pub const STAGES: [&'static str; 5] = ["pack", "send", "wire", "deposit", "unpack"];

    /// Telescoped per-stage marginal cycles: each present stage is charged
    /// the cycles between the previous present stage's completion and its
    /// own (clamped monotone), and the last present stage absorbs any tail
    /// up to `end_cycle` — so the marginals always sum to exactly
    /// `end_cycle`. Absent stages get zero.
    pub fn marginals(&self, end_cycle: Cycle) -> [Cycle; 5] {
        let mut out = [0; 5];
        let mut running = 0;
        let mut last_present = None;
        for (i, &completion) in self.completion.iter().enumerate() {
            if completion == 0 {
                continue;
            }
            let c = completion.clamp(running, end_cycle);
            out[i] = c - running;
            running = c;
            last_present = Some(i);
        }
        // Attribute the tail (agents idling out the clock, or an exchange
        // with no stage markers at all) to the last stage that ran — or to
        // the wire, which every exchange crosses.
        out[last_present.unwrap_or(2)] += end_cycle - running;
        out
    }
}

/// Result of a symmetric exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeResult {
    /// Payload words each node moved in each direction.
    pub words: u64,
    /// Cycle at which the last agent finished.
    pub end_cycle: Cycle,
    /// Whether both destinations hold exactly the peer's data.
    pub verified: bool,
    /// Per-stage completion cycles in the A→B direction.
    pub phases: PhaseTimeline,
}

impl ExchangeResult {
    /// Per-node throughput: one direction's payload over the total time —
    /// the paper's "MB/s per node" metric.
    pub fn per_node(&self, clock: memcomm_memsim::Clock) -> memcomm_model::Throughput {
        self.measurement().throughput(clock)
    }

    /// The raw measurement (words, cycles).
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.words, self.end_cycle)
    }
}

#[allow(clippy::large_enum_variant)] // one per node; size is irrelevant here
enum MainRole {
    Pipe(PipelinedCpu),
    Chain(CpuSender),
}

#[allow(clippy::large_enum_variant)] // two sides of one per-node slot; never collections
enum CopDuty {
    Scatter(PipelinedCpu),
    Receive(CpuReceiver),
}

struct Coproc {
    cpu: Cpu,
    duty: CopDuty,
}

struct Side {
    node: Node,
    cpu: Cpu,
    main: MainRole,
    dma: Option<DmaChunkQueue>,
    deposit: Option<DepositEngine>,
    cop: Option<Coproc>,
    chunk_words: u64,
    chunk_ready: Vec<Cycle>,
    expected_words: u64,
    layout: ExchangeLayout,
    main_done: bool,
    dma_done: bool,
    deposit_done: bool,
    cop_done: bool,
}

impl Side {
    fn step_main(&mut self) -> SimResult<Step> {
        let s = match &mut self.main {
            MainRole::Pipe(p) => p.step(
                &mut self.cpu,
                &mut self.node.path,
                &mut self.node.mem,
                &mut self.node.tx,
                &self.chunk_ready,
            )?,
            MainRole::Chain(s) => s.step(
                &mut self.cpu,
                &mut self.node.path,
                &self.node.mem,
                &mut self.node.tx,
            )?,
        };
        if s == Step::Done {
            self.main_done = true;
        }
        Ok(s)
    }

    fn step_dma(&mut self) -> Step {
        let MainRole::Pipe(pipe) = &self.main else {
            unreachable!("a DMA send queue always pairs with a gathering pipe");
        };
        let gathered = pipe.gathered();
        let s = match &mut self.dma {
            Some(q) => q.step(
                &mut self.node.path,
                &self.node.mem,
                &mut self.node.tx,
                gathered,
                &pipe.gather_done,
            ),
            None => Step::Done,
        };
        if s == Step::Done {
            self.dma_done = true;
        }
        s
    }

    fn step_deposit(&mut self) -> SimResult<Step> {
        let s = match &mut self.deposit {
            Some(d) => d.step(&mut self.node.path, &mut self.node.mem, &mut self.node.rx)?,
            None => Step::Done,
        };
        if let Some(d) = &self.deposit {
            while d.received() / self.chunk_words > self.chunk_ready.len() as u64 {
                self.chunk_ready.push(d.t);
            }
            let expected = self.expected_words;
            let all_chunks = expected.div_ceil(self.chunk_words);
            if expected > 0
                && d.received() == expected
                && (self.chunk_ready.len() as u64) < all_chunks
            {
                self.chunk_ready.push(d.t);
            }
        }
        if s == Step::Done {
            self.deposit_done = true;
        }
        Ok(s)
    }

    fn step_cop(&mut self) -> SimResult<Step> {
        let chunk_ready = &self.chunk_ready;
        let s = match &mut self.cop {
            Some(c) => match &mut c.duty {
                CopDuty::Scatter(p) => p.step(
                    &mut c.cpu,
                    &mut self.node.path,
                    &mut self.node.mem,
                    &mut self.node.tx,
                    chunk_ready,
                )?,
                CopDuty::Receive(r) => r.step(
                    &mut c.cpu,
                    &mut self.node.path,
                    &mut self.node.mem,
                    &mut self.node.rx,
                )?,
            },
            None => Step::Done,
        };
        if s == Step::Done {
            self.cop_done = true;
        }
        Ok(s)
    }

    fn agents_done(&self) -> bool {
        self.main_done && self.dma_done && self.deposit_done && self.cop_done
    }

    fn end_time(&self) -> Cycle {
        let mut t = self.cpu.t;
        if let Some(q) = &self.dma {
            t = t.max(q.t);
        }
        if let Some(d) = &self.deposit {
            t = t.max(d.t);
        }
        if let Some(c) = &self.cop {
            t = t.max(c.cpu.t);
        }
        t
    }

    fn time_of(&self, agent: usize) -> Option<Cycle> {
        match agent {
            0 if !self.main_done => Some(self.cpu.t),
            1 if !self.dma_done => Some(self.dma.as_ref().map_or(0, |q| q.t)),
            2 if !self.deposit_done => Some(self.deposit.as_ref().map_or(0, |d| d.t)),
            3 if !self.cop_done => Some(self.cop.as_ref().map_or(0, |c| c.cpu.t)),
            _ => None,
        }
    }

    fn step_agent(&mut self, agent: usize) -> SimResult<Step> {
        match agent {
            0 => self.step_main(),
            1 => Ok(self.step_dma()),
            2 => self.step_deposit(),
            3 => self.step_cop(),
            _ => unreachable!("agents are 0..4"),
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal constructor mirroring the agent set
fn build_side(
    machine: &Machine,
    x_spec: &WalkSpec,
    y_spec: &WalkSpec,
    style: Style,
    cfg: &ExchangeConfig,
    node_id: u64,
    send_words: u64,
    recv_words: u64,
) -> SimResult<Side> {
    let (x, y) = (x_spec.pattern(), y_spec.pattern());
    let mut node = Node::new(machine.node);
    let chunk_words = cfg.chunk_words.unwrap_or(cfg.words.max(1));
    let layout =
        ExchangeLayout::with_specs(&mut node, x_spec, y_spec, cfg.words, cfg.seed, node_id)?;
    let contiguous = x == AccessPattern::Contiguous && y == AccessPattern::Contiguous;
    let cpu = node.cpu();

    let (main, dma, deposit, cop) = match style {
        Style::BufferPacking => {
            let use_dma = machine.caps.fetch_send;
            let elide_gather = cfg.elide_contiguous_copies && x == AccessPattern::Contiguous;
            let elide_scatter = cfg.elide_contiguous_copies && y == AccessPattern::Contiguous;
            let duties = CpuDuties {
                gather: !elide_gather,
                send: !use_dma,
                scatter: !use_dma && !elide_scatter,
            };
            // With an elided gather the senders stream straight from the
            // source operand; with an elided scatter the deposit engine
            // stores straight into the destination.
            let mut role_layout = layout.slice_for(send_words, recv_words);
            if elide_gather {
                role_layout.send_buf = role_layout.src.clone();
            }
            let recv_target = if elide_scatter {
                layout.dst.clone()
            } else {
                layout.recv_buf.clone()
            };
            let pipe = PipelinedCpu::new(duties, role_layout.clone(), chunk_words);
            let dma = use_dma.then(|| {
                DmaChunkQueue::new(machine.node.dma, role_layout.send_buf.clone(), chunk_words)
            });
            let deposit = DepositEngine::new(
                machine.node.deposit,
                DepositMode::Stream(recv_target),
                recv_words,
            );
            // On a dual-processor node the co-processor unpacks while the
            // main processor packs (the "‖ 1Cy" variant of Section 5.1.3).
            let cop = (use_dma && !elide_scatter).then(|| Coproc {
                cpu: node.coprocessor(),
                duty: CopDuty::Scatter(PipelinedCpu::new(
                    CpuDuties {
                        gather: false,
                        send: false,
                        scatter: true,
                    },
                    layout.slice_for(0, recv_words),
                    chunk_words,
                )),
            });
            (MainRole::Pipe(pipe), dma, Some(deposit), cop)
        }
        Style::Chained => {
            let src = layout.src.slice(0, send_words);
            let remote = (!contiguous).then(|| layout.dst.slice(0, send_words));
            let sender = CpuSender::new(src, remote);
            let dst = layout.dst.slice(0, recv_words);
            if machine.caps.deposit_noncontiguous {
                // T3D: the annex deposits any pattern.
                let mode = if contiguous {
                    DepositMode::Stream(dst)
                } else {
                    DepositMode::Addressed
                };
                let deposit = DepositEngine::new(machine.node.deposit, mode, recv_words);
                (MainRole::Chain(sender), None, Some(deposit), None)
            } else {
                // Paragon: the co-processor acts as the deposit engine
                // (receive-store `0Ry`).
                let cop = Coproc {
                    cpu: node.coprocessor(),
                    duty: CopDuty::Receive(CpuReceiver::new(dst)),
                };
                (MainRole::Chain(sender), None, None, Some(cop))
            }
        }
    };

    Ok(Side {
        node,
        cpu,
        main,
        dma_done: dma.is_none(),
        dma,
        deposit_done: deposit.is_none(),
        deposit,
        cop_done: cop.is_none(),
        cop,
        chunk_words,
        chunk_ready: Vec::new(),
        expected_words: recv_words,
        layout,
        main_done: false,
    })
}

/// Runs a symmetric `xQy` exchange between two nodes of `machine` in the
/// given style and returns the per-node measurement, with end-to-end data
/// verification.
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] if the co-simulation wedges with work
/// outstanding, [`SimError::CycleBudget`] past `cfg.max_cycles`, and
/// propagates allocation, walk-validation and engine protocol errors.
pub fn run_exchange(
    machine: &Machine,
    x: AccessPattern,
    y: AccessPattern,
    style: Style,
    cfg: &ExchangeConfig,
) -> SimResult<ExchangeResult> {
    run_exchange_specs(
        machine,
        &WalkSpec::Pattern(x),
        &WalkSpec::Pattern(y),
        style,
        cfg,
    )
}

/// Like [`run_exchange`], but with explicit walk specifications — the entry
/// point for datatype-driven transfers whose element offsets are not a
/// plain pattern.
///
/// # Errors
///
/// As [`run_exchange`]; additionally [`SimError::InvalidWalk`] if an offset
/// list's length differs from `cfg.words`.
pub fn run_exchange_specs(
    machine: &Machine,
    x: &WalkSpec,
    y: &WalkSpec,
    style: Style,
    cfg: &ExchangeConfig,
) -> SimResult<ExchangeResult> {
    let congestion = cfg.congestion.unwrap_or(machine.default_congestion);
    let b_sends = if cfg.full_duplex { cfg.words } else { 0 };
    let obs = memcomm_obs::Obs::current();
    // One trace process per measured point; opened before the links so
    // their wire-busy spans land under it.
    let label = format!(
        "{} {}Q{} {}",
        machine.name,
        x.pattern(),
        y.pattern(),
        match style {
            Style::BufferPacking => "bp",
            Style::Chained => "chained",
        }
    );
    let _point = obs.point_scope(&label);
    let mut a = build_side(machine, x, y, style, cfg, 0, cfg.words, b_sends)?;
    let mut b = build_side(machine, x, y, style, cfg, 1, b_sends, cfg.words)?;
    let mut link_ab = Link::new(machine.link(congestion)).labeled("link.ab");
    let mut link_ba = Link::new(machine.link(congestion)).labeled("link.ba");
    // Generous step bound: each word crosses several engines; the watchdog
    // exists to convert a wedged co-simulation into an error, not to be the
    // binding constraint of a healthy run.
    let mut watchdog =
        Watchdog::new(256 * cfg.words.max(1) + 100_000).with_cycle_budget(cfg.max_cycles);

    loop {
        if a.agents_done() && b.agents_done() {
            break;
        }
        // Candidates: (local time, agent id). 0-3 node A, 4-7 node B,
        // 8/9 links.
        let mut order: Vec<(Cycle, usize)> = Vec::with_capacity(10);
        for k in 0..4 {
            if let Some(t) = a.time_of(k) {
                order.push((t, k));
            }
            if let Some(t) = b.time_of(k) {
                order.push((t, 4 + k));
            }
        }
        order.push((link_ab.time(), 8));
        order.push((link_ba.time(), 9));
        order.sort_unstable();

        let now = a.end_time().max(b.end_time());
        watchdog.tick("exchange driver", now)?;

        let mut progressed = false;
        for &(_, id) in &order {
            let step = match id {
                0..=3 => a.step_agent(id)?,
                4..=7 => b.step_agent(id - 4)?,
                8 => link_ab.step(&mut a.node.tx, &mut b.node.rx),
                9 => link_ba.step(&mut b.node.tx, &mut a.node.rx),
                _ => unreachable!(),
            };
            if matches!(step, Step::Progressed | Step::Done) {
                progressed = true;
                break;
            }
        }
        if !(progressed || (a.agents_done() && b.agents_done())) {
            return Err(SimError::Deadlock {
                detail: format!(
                    "exchange wedged: A {:?} B {:?}",
                    (a.main_done, a.dma_done, a.deposit_done, a.cop_done),
                    (b.main_done, b.dma_done, b.deposit_done, b.cop_done)
                ),
                at: a.end_time().max(b.end_time()),
            });
        }
    }
    if !(a.node.tx.is_empty()
        && b.node.tx.is_empty()
        && a.node.rx.is_empty()
        && b.node.rx.is_empty())
    {
        return Err(SimError::Deadlock {
            detail: "words left in flight after all agents finished".to_string(),
            at: a.end_time().max(b.end_time()),
        });
    }

    let end_cycle = a
        .end_time()
        .max(b.end_time())
        .max(link_ab.time())
        .max(link_ba.time());
    let verified = b.layout.verify_received(&b.node, 0)
        && (!cfg.full_duplex || a.layout.verify_received(&a.node, 1));
    let phases = phase_timeline(&a, &b, &link_ab);
    if obs.tracing() {
        emit_trace(&obs, &label, &a, &b, &phases, end_cycle);
    }
    Ok(ExchangeResult {
        words: cfg.words,
        end_cycle,
        verified,
        phases,
    })
}

/// Extracts the A→B direction's per-stage completion cycles from the
/// finished sides: pack and send from A's agents, wire from the forward
/// link, deposit and unpack from B's.
fn phase_timeline(a: &Side, b: &Side, link_ab: &Link) -> PhaseTimeline {
    let mut phases = PhaseTimeline::default();
    if let MainRole::Pipe(p) = &a.main {
        phases.completion[0] = p.gather_end.unwrap_or(0);
    }
    phases.completion[1] = match (&a.main, &a.dma) {
        (_, Some(q)) => q.t,
        (MainRole::Pipe(p), None) => p.send_end.unwrap_or(0),
        (MainRole::Chain(_), None) => a.cpu.t,
    };
    phases.completion[2] = link_ab.time();
    phases.completion[3] = match (&b.deposit, &b.cop) {
        (Some(d), _) => d.t,
        (
            None,
            Some(Coproc {
                duty: CopDuty::Receive(_),
                cpu,
            }),
        ) => cpu.t,
        _ => 0,
    };
    phases.completion[4] = match (&b.cop, &b.main) {
        (
            Some(Coproc {
                duty: CopDuty::Scatter(p),
                ..
            }),
            _,
        ) => p.scatter_end.unwrap_or(0),
        (_, MainRole::Pipe(p)) => p.scatter_end.unwrap_or(0),
        _ => 0,
    };
    phases
}

/// Emits the exchange's trace spans under the current point scope: the
/// scenario envelope, the telescoped phase breakdown, and one activity span
/// per engine agent. Links emit their own wire-busy spans.
fn emit_trace(
    obs: &memcomm_obs::Obs,
    label: &str,
    a: &Side,
    b: &Side,
    phases: &PhaseTimeline,
    end_cycle: Cycle,
) {
    obs.span("scenario", label, 0, end_cycle);
    let mut running = 0;
    for (stage, cycles) in PhaseTimeline::STAGES
        .iter()
        .zip(phases.marginals(end_cycle))
    {
        if cycles > 0 {
            obs.span("phase", stage, running, running + cycles);
        }
        running += cycles;
    }
    for (track, side) in [("engine.a", a), ("engine.b", b)] {
        obs.span(track, "main", 0, side.cpu.t);
        if let Some(q) = &side.dma {
            obs.span(track, "dma", 0, q.t);
        }
        if let Some(d) = &side.deposit {
            obs.span(track, "deposit", 0, d.t);
        }
        if let Some(c) = &side.cop {
            obs.span(track, "cop", 0, c.cpu.t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: AccessPattern = AccessPattern::Indexed;
    const C1: AccessPattern = AccessPattern::Contiguous;
    const S64: AccessPattern = AccessPattern::Strided(64);

    fn cfg() -> ExchangeConfig {
        ExchangeConfig {
            words: 2048,
            ..ExchangeConfig::default()
        }
    }

    fn rate(machine: &Machine, x: AccessPattern, y: AccessPattern, style: Style) -> f64 {
        let r = run_exchange(machine, x, y, style, &cfg()).unwrap();
        assert!(
            r.verified,
            "{} {:?} {x}Q{y} corrupted data",
            machine.name, style
        );
        r.per_node(machine.clock()).as_mbps()
    }

    #[test]
    fn t3d_chained_beats_buffer_packing_everywhere() {
        let m = Machine::t3d();
        for (x, y) in [(C1, C1), (C1, S64), (S64, C1), (W, W)] {
            let bp = rate(&m, x, y, Style::BufferPacking);
            let ch = rate(&m, x, y, Style::Chained);
            assert!(
                ch > bp,
                "{x}Q{y}: chained {ch:.1} must beat buffer packing {bp:.1}"
            );
        }
    }

    #[test]
    fn paragon_chained_beats_buffer_packing() {
        let m = Machine::paragon();
        for (x, y) in [(C1, C1), (C1, S64), (W, W)] {
            let bp = rate(&m, x, y, Style::BufferPacking);
            let ch = rate(&m, x, y, Style::Chained);
            assert!(
                ch > bp,
                "{x}Q{y}: chained {ch:.1} must beat buffer packing {bp:.1}"
            );
        }
    }

    #[test]
    fn congestion_slows_the_contiguous_exchange() {
        let m = Machine::t3d();
        let mut c1 = cfg();
        c1.congestion = Some(1.0);
        let mut c4 = cfg();
        c4.congestion = Some(4.0);
        let fast = run_exchange(&m, C1, C1, Style::Chained, &c1).unwrap();
        let slow = run_exchange(&m, C1, C1, Style::Chained, &c4).unwrap();
        assert!(slow.end_cycle > 2 * fast.end_cycle);
    }

    #[test]
    fn indexed_exchange_permutes_correctly() {
        // verify_received inside rate() covers it; this pins the pattern
        // combination the paper calls wQw on both machines.
        for m in [Machine::t3d(), Machine::paragon()] {
            let r = run_exchange(&m, W, W, Style::Chained, &cfg()).unwrap();
            assert!(r.verified);
        }
    }
}
