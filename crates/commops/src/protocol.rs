//! Resilient transfer protocol: sequence-numbered, checksummed framing with
//! ack/retry over faulty links.
//!
//! The paper's transfers assume a reliable network (both the T3D and the
//! Paragon guarantee delivery in hardware). This module asks the robustness
//! question the paper does not: what does a deposit-style transfer cost when
//! words can be dropped, corrupted or delayed in flight? The answer is a
//! stop-and-wait protocol in the style of the era's reliable message layers:
//!
//! * the payload is cut into **frames** of [`ProtocolConfig::frame_words`]
//!   words, each framed by a header control word (sequence number + length)
//!   and a trailing checksum control word (an xor-rotate over the sequence
//!   number and every payload word, addresses included);
//! * the receiver acks each intact frame on a reverse channel; duplicate
//!   frames (a lost ack) are re-acked and discarded, corrupt frames are
//!   silently dropped so the sender's timeout drives a retransmission;
//! * the sender retries with **exponential backoff** — the ack timeout
//!   doubles (by [`ProtocolConfig::backoff_factor`]) per attempt up to
//!   [`ProtocolConfig::max_timeout_cycles`]; after
//!   [`ProtocolConfig::max_retries`] failed attempts the transfer fails
//!   with [`SimError::Protocol`] instead of spinning forever;
//! * a **chained** transfer whose deposit engine the fault plan has taken
//!   down degrades gracefully: the receiver falls back to CPU stores (the
//!   buffer-packed receive path), keeping frame and sequence state, and the
//!   run is flagged [`TransferReport::degraded`]. [`blend_rates`] predicts
//!   the throughput of a workload that degrades some fraction of the time.

use memcomm_machines::Machine;
use memcomm_memsim::clock::Cycle;
use memcomm_memsim::fault::{site, FaultPlan};
use memcomm_memsim::nic::{NetWord, WordKind};
use memcomm_memsim::node::Watchdog;
use memcomm_memsim::walk::Walk;
use memcomm_memsim::{stats, Node, SimError, SimResult};
use memcomm_model::{AccessPattern, Throughput};
use memcomm_netsim::link::Step as LinkStep;
use memcomm_netsim::Link;

use crate::exchange::Style;
use crate::layout::ExchangeLayout;

/// Tag byte of a frame-header control word.
const TAG_HDR: u64 = 0xA5;
/// Tag byte of an ack control word.
const TAG_ACK: u64 = 0x5A;

/// Parameters of a resilient transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Payload words to move.
    pub words: u64,
    /// Payload words per frame.
    pub frame_words: u64,
    /// Initial ack timeout in cycles (attempt 0).
    pub timeout_cycles: Cycle,
    /// Timeout multiplier per failed attempt.
    pub backoff_factor: u32,
    /// Ceiling on the backed-off timeout.
    pub max_timeout_cycles: Cycle,
    /// Retransmissions allowed per frame before the transfer fails.
    pub max_retries: u32,
    /// Seed for indexed patterns.
    pub seed: u64,
    /// Simulated-cycle budget for the whole transfer.
    pub max_cycles: Option<Cycle>,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            words: 4096,
            frame_words: 64,
            timeout_cycles: 8192,
            backoff_factor: 2,
            max_timeout_cycles: 1 << 17,
            max_retries: 8,
            seed: 0x5EED,
            max_cycles: None,
        }
    }
}

/// Outcome of a resilient transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReport {
    /// Payload words moved.
    pub words: u64,
    /// Cycle at which the last agent finished.
    pub end_cycle: Cycle,
    /// Whether the destination holds exactly the source data.
    pub verified: bool,
    /// Frames transmitted, including retransmissions.
    pub frames_sent: u64,
    /// Retransmissions (frames_sent minus the frame count).
    pub retransmissions: u64,
    /// Whether the deposit engine was unavailable and the receiver fell
    /// back to CPU stores.
    pub degraded: bool,
}

impl TransferReport {
    /// End-to-end throughput of the transfer.
    pub fn throughput(&self, clock: memcomm_memsim::Clock) -> Throughput {
        clock.throughput(self.words * 8, self.end_cycle.max(1))
    }
}

/// The backed-off ack timeout for a retry attempt: `timeout * factor^attempt`
/// capped at `max`. The schedule itself is the shared
/// [`exp_backoff`](memcomm_util::backoff::exp_backoff) core — the same
/// deterministic geometric wait the network engine's link-level
/// retransmits use — parameterized by this protocol's config. Exposed for
/// testing the schedule is monotone and bounded.
pub fn backoff_timeout(cfg: &ProtocolConfig, attempt: u32) -> Cycle {
    memcomm_util::backoff::exp_backoff(
        cfg.timeout_cycles.max(1),
        u64::from(cfg.backoff_factor),
        cfg.max_timeout_cycles,
        attempt,
    )
}

/// Predicted throughput of a workload whose transfers run chained at
/// `chained` except for a `degraded_fraction` of the data that falls back
/// to the buffer-packed rate `packed` — the time-weighted (harmonic) blend,
/// since each byte takes `1/rate` time at its rate.
///
/// # Panics
///
/// Panics if `degraded_fraction` is outside `[0, 1]`.
pub fn blend_rates(chained: Throughput, packed: Throughput, degraded_fraction: f64) -> Throughput {
    assert!(
        (0.0..=1.0).contains(&degraded_fraction),
        "fraction must be in [0, 1]"
    );
    let c = chained.as_mbps();
    let p = packed.as_mbps();
    if c <= 0.0 || p <= 0.0 {
        return Throughput::from_mbps(0.0);
    }
    Throughput::from_mbps(1.0 / ((1.0 - degraded_fraction) / c + degraded_fraction / p))
}

/// The frame checksum: an xor-rotate over the sequence number and every
/// payload word (address and data), so dropped, duplicated, reordered and
/// corrupted words are all caught.
fn checksum(seq: u64, payload: &[NetWord]) -> u64 {
    let mut sum = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for w in payload {
        sum = sum.rotate_left(1) ^ w.data;
        sum = sum.rotate_left(1) ^ w.addr.map_or(0x0DD5, |a| a.wrapping_add(1));
    }
    sum
}

fn hdr_word(seq: u64, len: u64) -> NetWord {
    NetWord::control((TAG_HDR << 56) | ((seq & 0xFFFF_FFFF) << 24) | (len & 0xFF_FFFF))
}

fn parse_hdr(data: u64) -> Option<(u64, u64)> {
    (data >> 56 == TAG_HDR).then_some(((data >> 24) & 0xFFFF_FFFF, data & 0xFF_FFFF))
}

fn ack_word(seq: u64) -> NetWord {
    NetWord::control((TAG_ACK << 56) | (seq & 0xFFFF_FFFF))
}

fn parse_ack(data: u64) -> Option<u64> {
    (data >> 56 == TAG_ACK).then_some(data & 0xFFFF_FFFF)
}

enum SendState {
    /// Pushing frame words; `pos` counts pushed words including the header
    /// (0 = header, 1..=len = payload, len + 1 = checksum).
    Sending {
        pos: u64,
    },
    AwaitAck {
        deadline: Cycle,
    },
    Done,
}

struct Sender {
    src: Walk,
    /// Remote destination addresses for chained (addressed) payloads.
    remote: Option<Walk>,
    frame_words: u64,
    frames: u64,
    seq: u64,
    attempt: u32,
    state: SendState,
    frames_sent: u64,
    retransmissions: u64,
    /// Words of the in-flight frame (rebuilt per attempt).
    staged: Vec<NetWord>,
    word_cycles: Cycle,
    ctl_cycles: Cycle,
    poll_cycles: Cycle,
    t: Cycle,
    obs: memcomm_obs::Obs,
    /// Cycle the current frame's first attempt began (spans retries).
    frame_start: Cycle,
}

impl Sender {
    fn frame_range(&self, seq: u64) -> (u64, u64) {
        let start = seq * self.frame_words;
        (start, self.frame_words.min(self.src.len() - start))
    }

    fn stage_frame(&mut self, node: &Node, seq: u64) {
        let (start, len) = self.frame_range(seq);
        self.staged.clear();
        self.staged.push(hdr_word(seq, len));
        for i in start..start + len {
            let data = node.mem.read(self.src.addr(i));
            self.staged.push(match &self.remote {
                Some(dst) => NetWord::addressed(dst.addr(i), data),
                None => NetWord::data(data),
            });
        }
        let sum = checksum(seq, &self.staged[1..]);
        self.staged.push(NetWord::control(sum));
    }

    fn step(&mut self, node: &mut Node, cfg: &ProtocolConfig) -> SimResult<bool> {
        // Drain acks first, whatever the state.
        let mut acked = false;
        while let Some(ready) = node.rx.front_ready() {
            if ready > self.t {
                break;
            }
            let (at, word) = node.rx.pop(self.t).expect("front_ready implies word");
            self.t = self.t.max(at) + self.ctl_cycles;
            if word.kind == WordKind::Control {
                if let Some(seq) = parse_ack(word.data) {
                    if seq == self.seq {
                        acked = true;
                    }
                }
            }
        }
        if acked {
            // One frame delivered end to end: record its latency (first
            // word of the first attempt to ack receipt), how many attempts
            // it took, and the transmit-queue depth it left behind.
            if self.obs.tracing() {
                self.obs.span(
                    "protocol.frame",
                    &format!("frame {}", self.seq),
                    self.frame_start,
                    self.t,
                );
            }
            self.obs
                .observe("protocol.frame_latency", self.t - self.frame_start);
            self.obs
                .observe("protocol.frame_attempts", u64::from(self.attempt) + 1);
            self.obs
                .observe("protocol.tx_queue_depth", node.tx.len() as u64);
            self.seq += 1;
            self.attempt = 0;
            self.frame_start = self.t;
            self.state = if self.seq == self.frames {
                SendState::Done
            } else {
                SendState::Sending { pos: 0 }
            };
            return Ok(true);
        }
        match self.state {
            SendState::Done => Ok(false),
            SendState::Sending { pos } => {
                if pos == 0 {
                    self.stage_frame(node, self.seq);
                }
                let word = self.staged[pos as usize];
                let cost = if word.kind == WordKind::Control {
                    self.ctl_cycles
                } else {
                    self.word_cycles
                };
                match node.tx.push(self.t + cost, word) {
                    Some(at) => {
                        self.t = self.t.max(at).max(self.t + cost);
                        if pos + 1 == self.staged.len() as u64 {
                            self.frames_sent += 1;
                            self.state = SendState::AwaitAck {
                                deadline: self.t + backoff_timeout(cfg, self.attempt),
                            };
                        } else {
                            self.state = SendState::Sending { pos: pos + 1 };
                        }
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
            SendState::AwaitAck { deadline } => {
                if self.t >= deadline {
                    if self.attempt >= cfg.max_retries {
                        return Err(SimError::Protocol {
                            detail: format!(
                                "frame {} unacknowledged after {} attempts",
                                self.seq,
                                self.attempt + 1
                            ),
                            at: self.t,
                        });
                    }
                    self.attempt += 1;
                    self.retransmissions += 1;
                    self.obs.count(stats::fault_metric::RETRIED, 1);
                    self.obs.instant("protocol.frame", "retry", self.t);
                    self.state = SendState::Sending { pos: 0 };
                } else {
                    // Spin-poll the ack channel; the clock must advance so
                    // the timeout can fire even when nothing arrives.
                    self.t += self.poll_cycles;
                }
                Ok(true)
            }
        }
    }
}

enum RecvState {
    AwaitHdr,
    Payload {
        seq: u64,
        len: u64,
        got: Vec<NetWord>,
    },
}

struct Receiver {
    dst: Walk,
    frame_words: u64,
    expected_seq: u64,
    frames: u64,
    state: RecvState,
    /// Receiver stores by wire address (chained) or by element order
    /// (packed / degraded fallback).
    addressed: bool,
    word_cycles: Cycle,
    ctl_cycles: Cycle,
    t: Cycle,
}

impl Receiver {
    fn accept(&mut self, node: &mut Node, seq: u64, got: &[NetWord]) {
        let start = seq * self.frame_words;
        for (k, w) in got.iter().enumerate() {
            let addr = match w.addr {
                Some(a) if self.addressed => a,
                _ => self.dst.addr(start + k as u64),
            };
            node.mem.write(addr, w.data);
            self.t += self.word_cycles;
        }
        self.expected_seq += 1;
    }

    /// Handles one control word seen while expecting (or inside) a frame.
    /// Returns an ack to push, if the word completed an intact frame.
    fn on_control(&mut self, node: &mut Node, data: u64) -> Option<NetWord> {
        if let RecvState::Payload { seq, len, got } = &mut self.state {
            let complete = got.len() as u64 == *len && checksum(*seq, got) == data;
            if complete {
                let (seq, got) = (*seq, std::mem::take(got));
                self.state = RecvState::AwaitHdr;
                if seq == self.expected_seq {
                    self.accept(node, seq, &got);
                    return Some(ack_word(seq));
                }
                if seq < self.expected_seq {
                    // Duplicate (the ack was lost): re-ack, discard.
                    return Some(ack_word(seq));
                }
                // A future frame in stop-and-wait means state corruption;
                // drop it and let the sender's timeout resynchronize.
                return None;
            }
            // Not a valid end-of-frame: the frame is damaged (dropped or
            // corrupted words). Discard it and re-parse this control word
            // as a possible header so an intact retransmission resyncs.
            self.state = RecvState::AwaitHdr;
        }
        if let Some((seq, len)) = parse_hdr(data) {
            // Guard against a corrupted header staging an absurd frame.
            if len <= self.frame_words && seq <= self.expected_seq {
                self.state = RecvState::Payload {
                    seq,
                    len,
                    got: Vec::with_capacity(len as usize),
                };
            }
        }
        None
    }

    fn step(&mut self, node: &mut Node) -> bool {
        let Some(ready) = node.rx.front_ready() else {
            return false;
        };
        let (at, word) = node.rx.pop(self.t).expect("front_ready implies word");
        self.t = self.t.max(at).max(ready) + self.ctl_cycles;
        match word.kind {
            WordKind::Control => {
                if let Some(ack) = self.on_control(node, word.data) {
                    // The ack port store: charge it and push at the new time.
                    self.t += self.ctl_cycles;
                    // An unconstrained ack FIFO: acks are single words and
                    // the reverse channel is otherwise idle.
                    let _ = node.tx.push(self.t, ack);
                }
            }
            _ => {
                if let RecvState::Payload { len, got, .. } = &mut self.state {
                    if (got.len() as u64) < *len {
                        got.push(word);
                    } else {
                        // Overlong frame (inserted garbage): drop it.
                        self.state = RecvState::AwaitHdr;
                    }
                }
                // Data outside a frame: noise from a damaged frame; skip.
            }
        }
        true
    }

    fn done(&self) -> bool {
        self.expected_seq == self.frames
    }
}

/// Runs a one-way resilient `xQy` transfer of `cfg.words` words from node A
/// to node B of `machine`, under `plan`'s faults on both links, both NIC
/// FIFOs and the deposit engine, and returns the verified outcome.
///
/// A [`Style::Chained`] transfer uses addressed (Nadp) payload words and
/// the deposit engine; if the fault plan declares the deposit engine
/// unavailable ([`FaultPlan::engine_unavailable`] at [`site::DEPOSIT`]),
/// the transfer degrades to the buffer-packed receive path — data-only (Nd)
/// words stored by the receiving CPU — and the report says so.
///
/// # Errors
///
/// Returns [`SimError::Protocol`] when a frame exhausts its retries,
/// [`SimError::CycleBudget`] past `cfg.max_cycles`, [`SimError::Wedged`]
/// if the co-simulation stops making progress, and propagates allocation
/// and walk-validation failures.
pub fn run_resilient_transfer(
    machine: &Machine,
    x: AccessPattern,
    y: AccessPattern,
    style: Style,
    plan: FaultPlan,
    cfg: &ProtocolConfig,
) -> SimResult<TransferReport> {
    if cfg.frame_words == 0 || cfg.words == 0 {
        return Err(SimError::InvalidWalk {
            detail: "a resilient transfer needs at least one word and one frame word".to_string(),
        });
    }
    let obs = memcomm_obs::Obs::current();
    let label = format!(
        "{} resilient {x}Q{y} {}",
        machine.name,
        match style {
            Style::BufferPacking => "bp",
            Style::Chained => "chained",
        }
    );
    let _point = obs.point_scope(&label);
    let mut a = Node::new(machine.node);
    let mut b = Node::new(machine.node);
    let layout_a = ExchangeLayout::new(&mut a, x, y, cfg.words, cfg.seed, 0)?;
    let layout_b = ExchangeLayout::new(&mut b, x, y, cfg.words, cfg.seed, 1)?;

    // Graceful degradation: a chained transfer needs the deposit engine; if
    // the plan has taken it down, fall back to the buffer-packed receive
    // path (CPU stores, data-only words) rather than failing the transfer.
    let deposit_down = plan.engine_unavailable(site::DEPOSIT);
    let chained = style == Style::Chained && !deposit_down;
    let degraded = style == Style::Chained && deposit_down;
    if degraded {
        // The outage is itself a fired fault decision.
        obs.count(stats::fault_metric::INJECTED, 1);
        obs.count(stats::fault_metric::DEGRADED, 1);
    }

    let cpu = machine.node.cpu;
    let send_word_cycles = cpu.load_issue_cycles
        + cpu.loop_cycles
        + cpu.port_store_cycles
        + if x == AccessPattern::Indexed {
            cpu.indexed_extra_cycles
        } else {
            0
        }
        + if chained { cpu.store_issue_cycles } else { 0 };
    let recv_word_cycles = if chained {
        machine.node.deposit.word_cycles
    } else {
        // The buffer-packed receive path: the CPU pops the port and stores
        // each word at its destination.
        cpu.port_load_cycles
            + cpu.store_issue_cycles
            + cpu.loop_cycles
            + if y == AccessPattern::Indexed {
                cpu.indexed_extra_cycles
            } else {
                0
            }
    };

    let frames = cfg.words.div_ceil(cfg.frame_words);
    let mut sender = Sender {
        src: layout_a.src.slice(0, cfg.words),
        remote: chained.then(|| layout_b.dst.slice(0, cfg.words)),
        frame_words: cfg.frame_words,
        frames,
        seq: 0,
        attempt: 0,
        state: SendState::Sending { pos: 0 },
        frames_sent: 0,
        retransmissions: 0,
        staged: Vec::new(),
        word_cycles: send_word_cycles,
        ctl_cycles: cpu.port_store_cycles,
        poll_cycles: cpu.port_load_cycles.max(8),
        t: 0,
        obs: obs.clone(),
        frame_start: 0,
    };
    let mut receiver = Receiver {
        dst: layout_b.dst.slice(0, cfg.words),
        frame_words: cfg.frame_words,
        expected_seq: 0,
        frames,
        state: RecvState::AwaitHdr,
        addressed: chained,
        word_cycles: recv_word_cycles,
        ctl_cycles: if chained {
            machine.node.deposit.word_cycles
        } else {
            cpu.port_load_cycles
        },
        t: 0,
    };

    // Faulty wires and NIC FIFOs. The forward channel is A.tx → B.rx, the
    // ack channel B.tx → A.rx.
    a.tx.set_faults(plan, site::TX_FIFO);
    b.rx.set_faults(plan, site::RX_FIFO);
    let congestion = machine.default_congestion;
    let mut fwd =
        Link::with_faults(machine.link(congestion), plan, site::LINK_FORWARD).labeled("link.fwd");
    let mut rev =
        Link::with_faults(machine.link(congestion), plan, site::LINK_REVERSE).labeled("link.rev");

    let budget_steps = (u64::from(cfg.max_retries) + 2) * (64 * cfg.words + 10 * frames) + 100_000;
    let mut watchdog = Watchdog::new(budget_steps).with_cycle_budget(cfg.max_cycles);

    loop {
        let sender_done = matches!(sender.state, SendState::Done);
        if sender_done && receiver.done() {
            break;
        }
        watchdog.tick("resilient transfer", sender.t.max(receiver.t))?;
        let mut progressed = false;
        // Earliest-first across the four agents.
        let mut order: Vec<(Cycle, usize)> = Vec::with_capacity(4);
        if !sender_done {
            order.push((sender.t, 0));
        }
        if !receiver.done() {
            order.push((receiver.t, 1));
        }
        order.push((fwd.time(), 2));
        order.push((rev.time(), 3));
        order.sort_unstable();
        for &(_, id) in &order {
            let moved = match id {
                0 => sender.step(&mut a, cfg)?,
                1 => receiver.step(&mut b),
                2 => fwd.step(&mut a.tx, &mut b.rx) != LinkStep::Blocked,
                3 => rev.step(&mut b.tx, &mut a.rx) != LinkStep::Blocked,
                _ => unreachable!(),
            };
            if moved {
                progressed = true;
                break;
            }
        }
        if !progressed {
            // The receiver finished but trailing retransmissions are in
            // flight: let the sender's ack draining / timeout machinery run.
            if receiver.done() && !sender_done {
                let _ = sender.step(&mut a, cfg)?;
                continue;
            }
            return Err(SimError::Deadlock {
                detail: "resilient transfer wedged".to_string(),
                at: sender.t.max(receiver.t),
            });
        }
    }

    let end_cycle = sender.t.max(receiver.t).max(fwd.time()).max(rev.time());
    if obs.tracing() {
        obs.span("scenario", &label, 0, end_cycle);
        obs.span("engine.a", "sender", 0, sender.t);
        obs.span("engine.b", "receiver", 0, receiver.t);
    }
    let verified =
        (0..cfg.words).all(|i| b.mem.read(receiver.dst.addr(i)) == ExchangeLayout::value(0, i));
    Ok(TransferReport {
        words: cfg.words,
        end_cycle,
        verified,
        frames_sent: sender.frames_sent,
        retransmissions: sender.retransmissions,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcomm_memsim::fault::FaultConfig;

    const C1: AccessPattern = AccessPattern::Contiguous;
    const S64: AccessPattern = AccessPattern::Strided(64);

    fn cfg() -> ProtocolConfig {
        ProtocolConfig {
            words: 1024,
            ..ProtocolConfig::default()
        }
    }

    fn faulty(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            rate,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn clean_transfer_needs_no_retransmissions() {
        let m = Machine::t3d();
        for style in [Style::Chained, Style::BufferPacking] {
            let r =
                run_resilient_transfer(&m, C1, S64, style, FaultPlan::disabled(), &cfg()).unwrap();
            assert!(r.verified, "{style:?}");
            assert_eq!(r.retransmissions, 0);
            assert_eq!(r.frames_sent, 1024 / 64);
            assert!(!r.degraded);
        }
    }

    #[test]
    fn faulty_links_recover_and_verify() {
        let m = Machine::t3d();
        let r =
            run_resilient_transfer(&m, C1, C1, Style::Chained, faulty(0.02, 7), &cfg()).unwrap();
        assert!(r.verified, "retries must repair every dropped word");
        assert!(r.retransmissions > 0, "2% faults over 17 frames must hit");
    }

    #[test]
    fn replay_is_deterministic() {
        let m = Machine::paragon();
        // Results compare as full values: a failing run must fail
        // identically too.
        for (rate, seed) in [(0.01, 11), (0.3, 13)] {
            let run = || {
                run_resilient_transfer(
                    &m,
                    C1,
                    S64,
                    Style::BufferPacking,
                    faulty(rate, seed),
                    &cfg(),
                )
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn retries_are_bounded() {
        let m = Machine::t3d();
        // Rate 1.0: every word faulted; a third of them dropped — no frame
        // survives, so the sender must give up after max_retries.
        let tight = ProtocolConfig {
            max_retries: 2,
            timeout_cycles: 512,
            ..cfg()
        };
        match run_resilient_transfer(&m, C1, C1, Style::Chained, faulty(1.0, 3), &tight) {
            Err(SimError::Protocol { detail, .. }) => {
                assert!(detail.contains("unacknowledged"), "{detail}")
            }
            other => panic!("expected bounded retries to fail, got {other:?}"),
        }
    }

    /// A timeout so large it can never fire turns retry exhaustion into a
    /// livelock: the sender spin-polls for an ack that total word loss
    /// guarantees will never come. The watchdog's step budget must convert
    /// that into [`SimError::Wedged`] instead of spinning forever.
    #[test]
    fn a_timeout_that_never_fires_wedges_instead_of_spinning() {
        let m = Machine::t3d();
        let never = ProtocolConfig {
            words: 64,
            timeout_cycles: 1 << 40,
            max_timeout_cycles: 1 << 41,
            ..ProtocolConfig::default()
        };
        match run_resilient_transfer(&m, C1, C1, Style::Chained, faulty(1.0, 5), &never) {
            Err(SimError::Wedged { engine, steps, .. }) => {
                assert_eq!(engine, "resilient transfer");
                assert!(steps > 0);
            }
            other => panic!("expected the watchdog to fire, got {other:?}"),
        }
    }

    /// Attempt counts far past the cap must saturate at
    /// `max_timeout_cycles` — the backoff schedule multiplies instead of
    /// shifting precisely so attempt 63+ cannot overflow.
    #[test]
    fn backoff_saturates_without_overflow_at_huge_attempts() {
        let c = cfg();
        for attempt in [63, 64, 100, u32::MAX] {
            assert_eq!(backoff_timeout(&c, attempt), c.max_timeout_cycles);
        }
        let extreme = ProtocolConfig {
            timeout_cycles: 3,
            backoff_factor: u32::MAX,
            max_timeout_cycles: 1 << 62,
            ..cfg()
        };
        assert_eq!(backoff_timeout(&extreme, 63), 1 << 62);
        assert_eq!(backoff_timeout(&extreme, u32::MAX), 1 << 62);
    }

    /// An ack for a sequence number the sender is not waiting on must be
    /// dropped on the floor: no state change, no counter skew — only the
    /// matching ack advances the frame.
    #[test]
    fn unknown_sequence_acks_are_ignored_without_counter_skew() {
        let m = Machine::t3d();
        let mut node = Node::new(m.node);
        let layout = ExchangeLayout::new(&mut node, C1, C1, 128, 0x5EED, 0).unwrap();
        let mut s = Sender {
            src: layout.src.slice(0, 128),
            remote: None,
            frame_words: 64,
            frames: 2,
            seq: 0,
            attempt: 0,
            state: SendState::AwaitAck { deadline: 1 << 30 },
            frames_sent: 1,
            retransmissions: 0,
            staged: Vec::new(),
            word_cycles: 4,
            ctl_cycles: 2,
            poll_cycles: 8,
            t: 1000,
            obs: memcomm_obs::Obs::current(),
            frame_start: 0,
        };
        let c = ProtocolConfig::default();
        node.rx.push(0, ack_word(7)).expect("ack fits");
        s.step(&mut node, &c).unwrap();
        assert_eq!(s.seq, 0, "a stray ack must not advance the frame");
        assert!(matches!(s.state, SendState::AwaitAck { .. }));
        assert_eq!((s.frames_sent, s.retransmissions, s.attempt), (1, 0, 0));
        node.rx.push(0, ack_word(0)).expect("ack fits");
        s.step(&mut node, &c).unwrap();
        assert_eq!(s.seq, 1, "the matching ack advances exactly one frame");
        assert!(matches!(s.state, SendState::Sending { pos: 0 }));
        assert_eq!(s.frames_sent, 1, "advancing a frame sends nothing");
    }

    /// A checksummed frame whose sequence number is not the expected one:
    /// a duplicate (below) is re-acked and discarded, a future frame
    /// (stop-and-wait state corruption) is dropped unacked — and neither
    /// moves `expected_seq`.
    #[test]
    fn out_of_sequence_frames_never_skew_the_receiver() {
        let m = Machine::t3d();
        let mut node = Node::new(m.node);
        let layout = ExchangeLayout::new(&mut node, C1, C1, 128, 0x5EED, 1).unwrap();
        let mut r = Receiver {
            dst: layout.dst.slice(0, 128),
            frame_words: 64,
            expected_seq: 1,
            frames: 2,
            state: RecvState::AwaitHdr,
            addressed: false,
            word_cycles: 1,
            ctl_cycles: 1,
            t: 0,
        };
        let payload = vec![NetWord::data(0xAB); 4];
        // Duplicate (seq 0 < expected 1): its ack was lost; re-ack, discard.
        r.state = RecvState::Payload {
            seq: 0,
            len: 4,
            got: payload.clone(),
        };
        let ack = r.on_control(&mut node, checksum(0, &payload));
        assert_eq!(ack, Some(ack_word(0)), "duplicates are re-acked");
        assert_eq!(r.expected_seq, 1, "a duplicate must not advance the window");
        // Future frame (seq 5 > expected 1): drop silently, no ack.
        r.state = RecvState::Payload {
            seq: 5,
            len: 4,
            got: payload.clone(),
        };
        let ack = r.on_control(&mut node, checksum(5, &payload));
        assert_eq!(ack, None, "future frames are dropped unacked");
        assert_eq!(r.expected_seq, 1, "a future frame must not skew the window");
        // A future header cannot even stage a frame.
        assert!(r.on_control(&mut node, hdr_word(5, 4).data).is_none());
        assert!(matches!(r.state, RecvState::AwaitHdr));
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let c = cfg();
        let mut prev = 0;
        for attempt in 0..12 {
            let t = backoff_timeout(&c, attempt);
            assert!(t >= prev, "attempt {attempt}: {t} < {prev}");
            assert!(t <= c.max_timeout_cycles);
            prev = t;
        }
        assert_eq!(backoff_timeout(&c, 11), c.max_timeout_cycles);
    }

    #[test]
    fn deposit_outage_degrades_chained_exactly() {
        let m = Machine::t3d();
        let outage = FaultPlan::new(FaultConfig {
            seed: 9,
            outage_rate: 1.0,
            ..FaultConfig::default()
        });
        let down = run_resilient_transfer(&m, C1, S64, Style::Chained, outage, &cfg()).unwrap();
        assert!(down.degraded, "chained must fall back when the engine dies");
        assert!(down.verified, "the fallback still delivers the data");
        let up = run_resilient_transfer(&m, C1, S64, Style::Chained, FaultPlan::disabled(), &cfg())
            .unwrap();
        assert!(!up.degraded, "no outage, no fallback");
        // Buffer packing never degrades: it does not need the engine.
        let bp = run_resilient_transfer(&m, C1, S64, Style::BufferPacking, outage, &cfg()).unwrap();
        assert!(!bp.degraded);
    }

    #[test]
    fn blended_rate_interpolates_harmonically() {
        let ch = Throughput::from_mbps(100.0);
        let bp = Throughput::from_mbps(25.0);
        assert_eq!(blend_rates(ch, bp, 0.0), ch);
        assert_eq!(blend_rates(ch, bp, 1.0), bp);
        let half = blend_rates(ch, bp, 0.5).as_mbps();
        assert!((half - 40.0).abs() < 1e-9, "harmonic mean, got {half}");
    }

    #[test]
    fn degraded_run_lands_near_the_blended_prediction() {
        let m = Machine::t3d();
        let cfg = ProtocolConfig {
            words: 2048,
            ..ProtocolConfig::default()
        };
        let outage = FaultPlan::new(FaultConfig {
            seed: 9,
            outage_rate: 1.0,
            ..FaultConfig::default()
        });
        let chained =
            run_resilient_transfer(&m, C1, S64, Style::Chained, FaultPlan::disabled(), &cfg)
                .unwrap()
                .throughput(m.clock());
        let packed = run_resilient_transfer(
            &m,
            C1,
            S64,
            Style::BufferPacking,
            FaultPlan::disabled(),
            &cfg,
        )
        .unwrap()
        .throughput(m.clock());
        let degraded = run_resilient_transfer(&m, C1, S64, Style::Chained, outage, &cfg)
            .unwrap()
            .throughput(m.clock());
        // A fully degraded chained run is the packed receive path: the
        // blended model with fraction 1 must predict it closely.
        let predicted = blend_rates(chained, packed, 1.0).as_mbps();
        let ratio = degraded.as_mbps() / predicted;
        assert!(
            (0.8..1.25).contains(&ratio),
            "degraded {:.1} vs predicted {predicted:.1}",
            degraded.as_mbps()
        );
    }
}
