//! Get-based (withdraw) transfers — the path the paper declines to take.
//!
//! Footnote 2 of the paper: "when depositing data, address information and
//! data travel together over the network. When withdrawing data, the
//! latency is higher since address information has to travel first to the
//! node that holds the data." This module implements that alternative so
//! the claim can be measured: the requesting processor sends one request
//! word per element; the remote annex reads memory and sends the value
//! back; the local annex deposits it. Every element crosses the wire twice
//! (request + reply) instead of once.

use memcomm_machines::Machine;
use memcomm_memsim::engines::{AnnexEngine, Cpu, CpuReceiver, DepositEngine, DepositMode, Step};
use memcomm_memsim::nic::{NetWord, TimedFifo};
use memcomm_memsim::node::Watchdog;
use memcomm_memsim::path::MemPath;
use memcomm_memsim::walk::Walk;
use memcomm_memsim::{Node, SimError, SimResult};
use memcomm_model::AccessPattern;
use memcomm_netsim::Link;

use crate::exchange::{ExchangeConfig, ExchangeResult};
use crate::layout::ExchangeLayout;

/// A processor issuing remote-load requests: for each element it computes
/// the remote source address (pattern `x`) and the local destination
/// address (pattern `y`) and posts a request word to the NIC.
#[derive(Debug)]
pub struct CpuRequester {
    remote_src: Walk,
    local_dst: Walk,
    issued: u64,
    staged: Option<NetWord>,
}

impl CpuRequester {
    /// Creates a requester pulling `remote_src` (on the peer) into
    /// `local_dst` (here).
    ///
    /// # Panics
    ///
    /// Panics if the walks differ in length.
    pub fn new(remote_src: Walk, local_dst: Walk) -> Self {
        assert_eq!(remote_src.len(), local_dst.len(), "get walks must match");
        CpuRequester {
            remote_src,
            local_dst,
            issued: 0,
            staged: None,
        }
    }

    /// Advances by one request.
    pub fn step(&mut self, cpu: &mut Cpu, path: &mut MemPath, tx: &mut TimedFifo) -> Step {
        if let Some(word) = self.staged {
            return match tx.push(cpu.t, word) {
                Some(at) => {
                    cpu.t = cpu.t.max(at);
                    self.staged = None;
                    Step::Progressed
                }
                None => Step::Blocked,
            };
        }
        if self.issued == self.remote_src.len() {
            return Step::Done;
        }
        cpu.fetch_index(path, &self.remote_src, self.issued);
        cpu.fetch_index(path, &self.local_dst, self.issued);
        cpu.port_store();
        self.staged = Some(NetWord::request(
            self.remote_src.addr(self.issued),
            self.local_dst.addr(self.issued),
        ));
        self.issued += 1;
        Step::Progressed
    }
}

enum ReplySink {
    Deposit(DepositEngine),
    CoProcessor { cpu: Cpu, receiver: CpuReceiver },
}

impl ReplySink {
    fn time(&self) -> u64 {
        match self {
            ReplySink::Deposit(d) => d.t,
            ReplySink::CoProcessor { cpu, .. } => cpu.t,
        }
    }

    fn step(
        &mut self,
        path: &mut MemPath,
        mem: &mut memcomm_memsim::mem::Memory,
        reply_rx: &mut TimedFifo,
    ) -> SimResult<Step> {
        match self {
            ReplySink::Deposit(d) => d.step(path, mem, reply_rx),
            ReplySink::CoProcessor { cpu, receiver } => receiver.step(cpu, path, mem, reply_rx),
        }
    }
}

struct GetSide {
    node: Node,
    cpu: Cpu,
    requester: CpuRequester,
    /// Serves incoming requests; pushes replies onto the reply channel.
    responder: AnnexEngine,
    /// Deposits incoming replies (consumes the reply channel): the annex on
    /// machines whose deposit engine handles any pattern, the co-processor
    /// elsewhere (the Paragon's DMA cannot scatter).
    deposit: ReplySink,
    /// Outgoing reply virtual channel (requests use `node.tx`). Real
    /// machines separate request and reply traffic into virtual channels
    /// precisely to avoid request-reply deadlock; so do we.
    reply_tx: TimedFifo,
    /// Incoming reply virtual channel.
    reply_rx: TimedFifo,
    layout: ExchangeLayout,
    requester_done: bool,
    responder_done: bool,
    deposit_done: bool,
}

fn build_get_side(
    machine: &Machine,
    x: AccessPattern,
    y: AccessPattern,
    cfg: &ExchangeConfig,
    node_id: u64,
    pull_words: u64,
    serve_words: u64,
) -> SimResult<GetSide> {
    let mut node = Node::new(machine.node);
    let layout = ExchangeLayout::new(&mut node, x, y, cfg.words, cfg.seed, node_id)?;
    let cpu = node.cpu();
    // Pull the peer's `src` (same addresses as ours — identical layouts)
    // into our `dst`.
    let requester = CpuRequester::new(
        layout.src.slice(0, pull_words),
        layout.dst.slice(0, pull_words),
    );
    let responder = AnnexEngine::new(machine.node.deposit, 0, serve_words);
    let deposit = if machine.caps.deposit_noncontiguous {
        ReplySink::Deposit(DepositEngine::new(
            machine.node.deposit,
            DepositMode::Addressed,
            pull_words,
        ))
    } else {
        ReplySink::CoProcessor {
            cpu: node.coprocessor(),
            receiver: CpuReceiver::new(layout.dst.slice(0, pull_words)),
        }
    };
    Ok(GetSide {
        node,
        cpu,
        requester,
        responder,
        deposit,
        reply_tx: TimedFifo::new(machine.node.tx_fifo_words),
        reply_rx: TimedFifo::new(machine.node.rx_fifo_words),
        layout,
        requester_done: false,
        responder_done: false,
        deposit_done: false,
    })
}

/// Runs a symmetric get-based exchange: each node *pulls* `cfg.words` of
/// pattern `x` from its peer into pattern `y` locally. The counterpart of
/// [`run_exchange`](crate::run_exchange) with
/// [`Style::Chained`](crate::Style::Chained), built on remote loads instead
/// of remote stores.
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] if the co-simulation wedges,
/// [`SimError::CycleBudget`] past `cfg.max_cycles`, and propagates
/// allocation and engine protocol errors.
pub fn run_get_exchange(
    machine: &Machine,
    x: AccessPattern,
    y: AccessPattern,
    cfg: &ExchangeConfig,
) -> SimResult<ExchangeResult> {
    // Requests and replies multiplex one physical wire per direction; with
    // both nodes pulling, each direction carries two streams.
    let base = cfg.congestion.unwrap_or(machine.default_congestion);
    let congestion = if cfg.full_duplex { base * 2.0 } else { base };
    let b_pulls = if cfg.full_duplex { cfg.words } else { 0 };
    let mut a = build_get_side(machine, x, y, cfg, 0, cfg.words, b_pulls)?;
    let mut b = build_get_side(machine, x, y, cfg, 1, b_pulls, cfg.words)?;
    let mut req_ab = Link::new(machine.link(congestion));
    let mut req_ba = Link::new(machine.link(congestion));
    let mut rep_ab = Link::new(machine.link(congestion));
    let mut rep_ba = Link::new(machine.link(congestion));

    let side_done = |s: &GetSide| s.requester_done && s.responder_done && s.deposit_done;
    let mut watchdog =
        Watchdog::new(256 * cfg.words.max(1) + 100_000).with_cycle_budget(cfg.max_cycles);
    loop {
        if side_done(&a) && side_done(&b) {
            break;
        }
        let mut order: Vec<(u64, usize)> = Vec::with_capacity(10);
        for (base_id, side) in [(0usize, &a), (3, &b)] {
            if !side.requester_done {
                order.push((side.cpu.t, base_id));
            }
            if !side.responder_done {
                order.push((side.responder.t, base_id + 1));
            }
            if !side.deposit_done {
                order.push((side.deposit.time(), base_id + 2));
            }
        }
        order.push((req_ab.time(), 6));
        order.push((req_ba.time(), 7));
        order.push((rep_ab.time(), 8));
        order.push((rep_ba.time(), 9));
        order.sort_unstable();

        let mut progressed = false;
        for &(_, id) in &order {
            let step = match id {
                0 | 3 => {
                    let s = if id == 0 { &mut a } else { &mut b };
                    let step = s
                        .requester
                        .step(&mut s.cpu, &mut s.node.path, &mut s.node.tx);
                    s.requester_done |= step == Step::Done;
                    step
                }
                1 | 4 => {
                    let s = if id == 1 { &mut a } else { &mut b };
                    let Node { path, mem, rx, .. } = &mut s.node;
                    let step = s.responder.step(path, mem, rx, &mut s.reply_tx)?;
                    s.responder_done |= step == Step::Done;
                    step
                }
                2 | 5 => {
                    let s = if id == 2 { &mut a } else { &mut b };
                    let Node { path, mem, .. } = &mut s.node;
                    let step = s.deposit.step(path, mem, &mut s.reply_rx)?;
                    s.deposit_done |= step == Step::Done;
                    step
                }
                6 => req_ab.step(&mut a.node.tx, &mut b.node.rx),
                7 => req_ba.step(&mut b.node.tx, &mut a.node.rx),
                8 => rep_ab.step(&mut a.reply_tx, &mut b.reply_rx),
                9 => rep_ba.step(&mut b.reply_tx, &mut a.reply_rx),
                _ => unreachable!(),
            };
            if matches!(step, Step::Progressed | Step::Done) {
                progressed = true;
                break;
            }
        }
        if !(progressed || (side_done(&a) && side_done(&b))) {
            return Err(SimError::Deadlock {
                detail: "get exchange wedged with work outstanding".to_string(),
                at: a.cpu.t.max(b.cpu.t),
            });
        }
        watchdog.tick("get driver", a.cpu.t.max(b.cpu.t))?;
    }

    let end_cycle = a
        .cpu
        .t
        .max(b.cpu.t)
        .max(a.responder.t)
        .max(b.responder.t)
        .max(a.deposit.time())
        .max(b.deposit.time())
        .max(req_ab.time())
        .max(req_ba.time())
        .max(rep_ab.time())
        .max(rep_ba.time());
    // A pulled B's data: element i of B's src landed at element i of A's dst.
    let verified = a.layout.verify_received(&a.node, 1)
        && (!cfg.full_duplex || b.layout.verify_received(&b.node, 0));
    Ok(ExchangeResult {
        words: cfg.words,
        end_cycle,
        verified,
        phases: crate::exchange::PhaseTimeline::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_exchange, Style};

    fn cfg() -> ExchangeConfig {
        ExchangeConfig {
            words: 1024,
            ..ExchangeConfig::default()
        }
    }

    #[test]
    fn get_exchange_delivers_correct_data() {
        let m = Machine::t3d();
        for (x, y) in [
            (AccessPattern::Contiguous, AccessPattern::Contiguous),
            (AccessPattern::Strided(16), AccessPattern::Indexed),
        ] {
            let r = run_get_exchange(&m, x, y, &cfg()).unwrap();
            assert!(r.verified, "{x}Q{y} get corrupted data");
        }
    }

    #[test]
    fn put_beats_get_as_the_paper_argues() {
        // Footnote 2: deposits are preferred. A get crosses the wire twice
        // per element and serializes request processing behind replies.
        let m = Machine::t3d();
        for (x, y) in [
            (AccessPattern::Contiguous, AccessPattern::Contiguous),
            (AccessPattern::Contiguous, AccessPattern::Strided(64)),
        ] {
            let put = run_exchange(&m, x, y, Style::Chained, &cfg()).unwrap();
            let get = run_get_exchange(&m, x, y, &cfg()).unwrap();
            assert!(put.verified && get.verified);
            let put_rate = put.per_node(m.clock()).as_mbps();
            let get_rate = get.per_node(m.clock()).as_mbps();
            assert!(
                put_rate > 1.3 * get_rate,
                "{x}Q{y}: put {put_rate:.1} must clearly beat get {get_rate:.1}"
            );
        }
    }

    #[test]
    fn paragon_get_uses_the_coprocessor_and_verifies() {
        let m = Machine::paragon();
        let r = run_get_exchange(
            &m,
            AccessPattern::Contiguous,
            AccessPattern::Strided(64),
            &cfg(),
        )
        .unwrap();
        assert!(r.verified);
    }

    #[test]
    fn half_duplex_get_also_verifies() {
        let m = Machine::t3d();
        let half = ExchangeConfig {
            full_duplex: false,
            ..cfg()
        };
        let r =
            run_get_exchange(&m, AccessPattern::Indexed, AccessPattern::Contiguous, &half).unwrap();
        assert!(r.verified);
    }
}
