//! Prints simulated buffer-packing vs chained exchange rates next to the
//! paper's Section 5 model numbers.
//!
//! Run with `cargo run --release -p memcomm-commops --example q_report`.

use memcomm_commops::{run_exchange, ExchangeConfig, Style};
use memcomm_machines::{reference, Machine};
use memcomm_model::AccessPattern;

fn main() {
    let base = ExchangeConfig {
        words: 8192,
        ..ExchangeConfig::default()
    };
    let pat = |s: &str| match s {
        "1" => AccessPattern::Contiguous,
        "w" => AccessPattern::Indexed,
        n => AccessPattern::strided(n.parse().unwrap()).unwrap(),
    };
    for (machine, qref) in [
        (Machine::t3d(), reference::t3d_q_model()),
        (Machine::paragon(), reference::paragon_q_model()),
    ] {
        // The paper's Paragon measurements were half duplex.
        let cfg = ExchangeConfig {
            full_duplex: machine.name == "Cray T3D",
            ..base
        };
        println!("== {} ==", machine.name);
        println!(
            "{:<8} {:>8} {:>10} {:>8} {:>10}",
            "op", "sim bp", "paper bp", "sim ch", "paper ch"
        );
        for point in qref {
            let (x, y) = point.op.split_once('Q').unwrap();
            let (x, y) = (pat(x), pat(y));
            let run = |style| match run_exchange(&machine, x, y, style, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{} exchange failed: {e}", point.op);
                    std::process::exit(1);
                }
            };
            let bp = run(Style::BufferPacking);
            let ch = run(Style::Chained);
            assert!(bp.verified && ch.verified);
            println!(
                "{:<8} {:>8.1} {:>10.1} {:>8.1} {:>10.1}",
                point.op,
                bp.per_node(machine.clock()).as_mbps(),
                point.buffer_packing.as_mbps(),
                ch.per_node(machine.clock()).as_mbps(),
                point.chained.as_mbps(),
            );
        }
        println!();
    }
}
