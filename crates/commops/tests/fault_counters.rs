//! Fault counters are per-run observability, not process state.
//!
//! The old `memsim::stats` process-wide atomics are gone; every injection
//! site counts into the `memcomm-obs` registry installed on *its* thread.
//! These tests pin the contract that made the deletion safe: two
//! concurrent transfers with separate registries never bleed counts into
//! each other, and a snapshot taken through [`FaultCounters::from_obs`]
//! equals the per-run report's own numbers.

use std::thread;

use memcomm_commops::{run_resilient_transfer, ProtocolConfig, Style, TransferReport};
use memcomm_machines::Machine;
use memcomm_memsim::fault::{FaultConfig, FaultPlan};
use memcomm_memsim::stats::FaultCounters;
use memcomm_model::AccessPattern;
use memcomm_obs::Obs;

const C1: AccessPattern = AccessPattern::Contiguous;

fn cfg() -> ProtocolConfig {
    ProtocolConfig {
        words: 1024,
        ..ProtocolConfig::default()
    }
}

fn faulty(rate: f64, seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        rate,
        ..FaultConfig::default()
    })
}

/// Runs one resilient transfer under a fresh per-thread registry and
/// returns the report plus the counters that registry accumulated.
fn run_isolated(plan: FaultPlan) -> (TransferReport, FaultCounters) {
    let obs = Obs::new(false);
    let report = {
        let _guard = obs.install();
        run_resilient_transfer(&Machine::t3d(), C1, C1, Style::Chained, plan, &cfg())
            .expect("transfer completes")
    };
    let counters = FaultCounters::from_obs(&obs);
    (report, counters)
}

#[test]
fn concurrent_faulted_and_clean_runs_do_not_bleed_counts() {
    let faulted = thread::spawn(|| run_isolated(faulty(0.02, 7)));
    let clean = thread::spawn(|| run_isolated(FaultPlan::disabled()));

    let (faulted_report, faulted_counters) = faulted.join().expect("faulted thread");
    let (clean_report, clean_counters) = clean.join().expect("clean thread");

    assert!(faulted_report.verified, "retries must repair every drop");
    assert!(
        faulted_report.retransmissions > 0,
        "2% faults over a 1024-word transfer must hit at least once"
    );
    assert!(
        faulted_counters.injected > 0 && faulted_counters.retried > 0,
        "the faulted run's own registry must see its faults: {faulted_counters:?}"
    );

    // The clean run overlapped the faulted one in time; with process-wide
    // counters its snapshot would show the neighbour's faults.
    assert_eq!(
        clean_counters,
        FaultCounters::default(),
        "a fault-free run must observe zero fault activity"
    );
    assert!(clean_report.verified && clean_report.retransmissions == 0);
}

#[test]
fn concurrent_faulted_runs_each_see_only_their_own_faults() {
    // Two *different* fault plans running at the same time: each registry
    // must report exactly what a solo replay of the same plan reports.
    let heavy = thread::spawn(|| run_isolated(faulty(0.02, 7)));
    let light = thread::spawn(|| run_isolated(faulty(0.002, 22)));
    let (heavy_report, heavy_counters) = heavy.join().expect("heavy thread");
    let (light_report, light_counters) = light.join().expect("light thread");

    let (solo_heavy_report, solo_heavy) = run_isolated(faulty(0.02, 7));
    let (solo_light_report, solo_light) = run_isolated(faulty(0.002, 22));

    assert_eq!(heavy_report, solo_heavy_report);
    assert_eq!(light_report, solo_light_report);
    assert_eq!(
        heavy_counters, solo_heavy,
        "concurrent neighbours must not skew the heavy run's counters"
    );
    assert_eq!(
        light_counters, solo_light,
        "concurrent neighbours must not skew the light run's counters"
    );
    assert!(heavy_counters.retried >= light_counters.retried);
}

#[test]
fn from_obs_matches_the_reports_own_retransmission_count() {
    let (report, counters) = run_isolated(faulty(0.01, 3));
    assert_eq!(
        counters.retried, report.retransmissions,
        "the registry and the report count the same retransmissions"
    );
    assert!(!report.degraded);
    assert_eq!(counters.degraded, 0);
}
