//! Criterion benches: one group per table/figure of the paper, plus the
//! ablation benches DESIGN.md calls out. Each bench runs the corresponding
//! simulation at a reduced size (the `repro` binary runs the full-size
//! versions); ablation groups also print the simulated throughput effect
//! once, so `cargo bench` output doubles as the ablation report.

use criterion::{criterion_group, criterion_main, Criterion};

use memcomm_bench::experiments::{self, parse_q};
use memcomm_commops::{
    measure_message, run_datatype_exchange, run_exchange, run_get_exchange, Datatype,
    DatatypeMethod, ExchangeConfig, LibraryProfile, Style,
};
use memcomm_kernels::apps::{CommMethod, FemKernel, SorKernel, TransposeKernel};
use memcomm_machines::{microbench, Machine};
use memcomm_memsim::scenario;
use memcomm_memsim::Node;
use memcomm_model::{AccessPattern, BasicTransfer};
use memcomm_netsim::link::measure_wire_rate;

const WORDS: u64 = 2048;

fn machines() -> [Machine; 2] {
    [Machine::t3d(), Machine::paragon()]
}

fn fig1_libraries(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_libraries");
    for m in machines() {
        g.bench_function(format!("{} pvm 4KiB", m.name), |b| {
            b.iter(|| measure_message(&m, LibraryProfile::pvm(&m), 512))
        });
        g.bench_function(format!("{} low-level 4KiB", m.name), |b| {
            b.iter(|| measure_message(&m, LibraryProfile::low_level(&m), 512))
        });
    }
    g.finish();
}

fn table1_local_copies(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_local_copies");
    for m in machines() {
        for op in ["1C1", "1C64", "wC1"] {
            let t = BasicTransfer::parse(op).expect("notation");
            g.bench_function(format!("{} {op}", m.name), |b| {
                b.iter(|| microbench::measure_basic(&m, t, WORDS))
            });
        }
    }
    g.finish();
}

fn fig4_stride_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_stride_sweep");
    for m in machines() {
        g.bench_function(m.name, |b| {
            b.iter(|| {
                microbench::stride_sweep(&m, &[2, 8, 32, 128], WORDS, microbench::StrideSide::Stores)
            })
        });
    }
    g.finish();
}

fn table2_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_send");
    for m in machines() {
        for op in ["1S0", "64S0", "1F0"] {
            let t = BasicTransfer::parse(op).expect("notation");
            if microbench::measure_basic(&m, t, 64).is_none() {
                continue;
            }
            g.bench_function(format!("{} {op}", m.name), |b| {
                b.iter(|| microbench::measure_basic(&m, t, WORDS))
            });
        }
    }
    g.finish();
}

fn table3_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_receive");
    for m in machines() {
        for op in ["0R1", "0D1", "0D64", "0R64"] {
            let t = BasicTransfer::parse(op).expect("notation");
            if microbench::measure_basic(&m, t, 64).is_none() {
                continue;
            }
            g.bench_function(format!("{} {op}", m.name), |b| {
                b.iter(|| microbench::measure_basic(&m, t, WORDS))
            });
        }
    }
    g.finish();
}

fn table4_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_network");
    for m in machines() {
        for congestion in [1.0, 2.0, 4.0] {
            g.bench_function(format!("{} Nd@{congestion}", m.name), |b| {
                b.iter(|| measure_wire_rate(m.link(congestion), WORDS, false))
            });
        }
        g.bench_function(format!("{} Nadp@2", m.name), |b| {
            b.iter(|| measure_wire_rate(m.link(2.0), WORDS, true))
        });
    }
    g.finish();
}

fn exchange_group(c: &mut Criterion, name: &str, machine: &Machine) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    let cfg = experiments::paper_exchange_cfg(machine, WORDS);
    for op in ["1Q1", "1Q64", "wQw"] {
        let (x, y) = parse_q(op);
        g.bench_function(format!("{op} buffer-packing"), |b| {
            b.iter(|| run_exchange(machine, x, y, Style::BufferPacking, &cfg))
        });
        g.bench_function(format!("{op} chained"), |b| {
            b.iter(|| run_exchange(machine, x, y, Style::Chained, &cfg))
        });
    }
    g.finish();
}

fn fig7_t3d_styles(c: &mut Criterion) {
    exchange_group(c, "fig7_t3d_styles", &Machine::t3d());
}

fn fig8_paragon_styles(c: &mut Criterion) {
    exchange_group(c, "fig8_paragon_styles", &Machine::paragon());
}

fn table5_loads_vs_stores(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_loads_vs_stores");
    g.sample_size(10);
    for m in machines() {
        let cfg = experiments::paper_exchange_cfg(&m, WORDS);
        for op in ["1Q16", "16Q1"] {
            let (x, y) = parse_q(op);
            g.bench_function(format!("{} {op} chained", m.name), |b| {
                b.iter(|| run_exchange(&m, x, y, Style::Chained, &cfg))
            });
        }
    }
    g.finish();
}

fn table6_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_kernels");
    g.sample_size(10);
    let t3d = Machine::t3d();
    let transpose = TransposeKernel::paper_instance();
    let fem = FemKernel::paper_instance();
    let sor = SorKernel::paper_instance();
    g.bench_function("transpose chained", |b| {
        b.iter(|| transpose.measure(&t3d, CommMethod::Chained))
    });
    g.bench_function("fem chained", |b| {
        b.iter(|| fem.measure(&t3d, CommMethod::Chained))
    });
    g.bench_function("sor chained", |b| {
        b.iter(|| sor.measure(&t3d, CommMethod::Chained))
    });
    g.finish();
}

// ------------------------------------------------------------- Ablations

fn copy_rate(machine: &Machine, op: &str) -> f64 {
    let t = BasicTransfer::parse(op).expect("notation");
    microbench::measure_rate(machine, t, WORDS)
        .map(|r| r.as_mbps())
        .unwrap_or(f64::NAN)
}

/// T3D write-back queue on/off: strided stores lose their advantage.
fn ablation_wbq(c: &mut Criterion) {
    let on = Machine::t3d();
    let mut off = Machine::t3d();
    off.node.path.wbq.entries = 1;
    off.node.path.wbq.merge = false;
    off.node.path.dram.posted_write_miss_cycles = off.node.path.dram.write_miss_cycles;
    eprintln!(
        "[ablation_wbq] T3D 1C64: wbq on {:.1} MB/s, off {:.1} MB/s",
        copy_rate(&on, "1C64"),
        copy_rate(&off, "1C64")
    );
    let mut g = c.benchmark_group("ablation_wbq");
    g.bench_function("on", |b| b.iter(|| copy_rate(&on, "1C64")));
    g.bench_function("off", |b| b.iter(|| copy_rate(&off, "1C64")));
    g.finish();
}

/// T3D read-ahead on/off — the paper cites ≈60% for contiguous loads.
fn ablation_readahead(c: &mut Criterion) {
    let on = Machine::t3d();
    let mut off = Machine::t3d();
    off.node.path.readahead.enabled = false;
    eprintln!(
        "[ablation_readahead] T3D 1C0 load stream: rdal on {:.1} MB/s, off {:.1} MB/s",
        copy_rate(&on, "1C0"),
        copy_rate(&off, "1C0")
    );
    let mut g = c.benchmark_group("ablation_readahead");
    g.bench_function("on", |b| b.iter(|| copy_rate(&on, "1C0")));
    g.bench_function("off", |b| b.iter(|| copy_rate(&off, "1C0")));
    g.finish();
}

/// Paragon pipelined loads on/off — the paper cites a 30–40% loss.
fn ablation_pfq(c: &mut Criterion) {
    let on = Machine::paragon();
    let mut off = Machine::paragon();
    off.node.cpu.pfq.enabled = false;
    eprintln!(
        "[ablation_pfq] Paragon 64C1: pfld on {:.1} MB/s, off {:.1} MB/s",
        copy_rate(&on, "64C1"),
        copy_rate(&off, "64C1")
    );
    let mut g = c.benchmark_group("ablation_pfq");
    g.bench_function("on", |b| b.iter(|| copy_rate(&on, "64C1")));
    g.bench_function("off", |b| b.iter(|| copy_rate(&off, "64C1")));
    g.finish();
}

/// Paragon bus fine-grain interleave penalty — the paper cites up to 50%
/// when processor and co-processor interleave single-word accesses.
fn ablation_interleave(c: &mut Criterion) {
    let base = Machine::paragon();
    let mut heavy = Machine::paragon();
    heavy.node.path.switch_penalty_cycles = 6;
    let cfg = experiments::paper_exchange_cfg(&base, WORDS);
    let full_duplex = ExchangeConfig {
        full_duplex: true,
        ..cfg
    };
    let (x, y) = parse_q("wQw");
    let r = |m: &Machine| {
        run_exchange(m, x, y, Style::Chained, &full_duplex)
            .per_node(m.clock())
            .as_mbps()
    };
    eprintln!(
        "[ablation_interleave] Paragon wQ'w full duplex: penalty 2cyc {:.1} MB/s, 6cyc {:.1} MB/s",
        r(&base),
        r(&heavy)
    );
    let mut g = c.benchmark_group("ablation_interleave");
    g.sample_size(10);
    g.bench_function("penalty2", |b| b.iter(|| r(&base)));
    g.bench_function("penalty6", |b| b.iter(|| r(&heavy)));
    g.finish();
}

/// Buffer-packing chunk size: store-and-forward vs pipelined chunks.
fn ablation_chunk(c: &mut Criterion) {
    let t3d = Machine::t3d();
    let rate = |chunk: Option<u64>| {
        let cfg = ExchangeConfig {
            words: WORDS,
            chunk_words: chunk,
            ..ExchangeConfig::default()
        };
        let (x, y) = parse_q("1Q64");
        run_exchange(&t3d, x, y, Style::BufferPacking, &cfg)
            .per_node(t3d.clock())
            .as_mbps()
    };
    eprintln!(
        "[ablation_chunk] T3D 1Q64 bp: store-and-forward {:.1} MB/s, 256-word chunks {:.1} MB/s",
        rate(None),
        rate(Some(256))
    );
    let mut g = c.benchmark_group("ablation_chunk");
    g.sample_size(10);
    g.bench_function("store-and-forward", |b| b.iter(|| rate(None)));
    g.bench_function("chunk256", |b| b.iter(|| rate(Some(256))));
    g.finish();
}

/// Extension: deposits (put) vs withdrawals (get).
fn extension_put_vs_get(c: &mut Criterion) {
    let t3d = Machine::t3d();
    let cfg = ExchangeConfig {
        words: WORDS,
        ..ExchangeConfig::default()
    };
    let (x, y) = parse_q("1Q64");
    let put = run_exchange(&t3d, x, y, Style::Chained, &cfg);
    let get = run_get_exchange(&t3d, x, y, &cfg);
    eprintln!(
        "[extension_put_vs_get] T3D 1Q64: put {:.1} MB/s, get {:.1} MB/s",
        put.per_node(t3d.clock()).as_mbps(),
        get.per_node(t3d.clock()).as_mbps()
    );
    let mut g = c.benchmark_group("extension_put_vs_get");
    g.sample_size(10);
    g.bench_function("put", |b| {
        b.iter(|| run_exchange(&t3d, x, y, Style::Chained, &cfg))
    });
    g.bench_function("get", |b| b.iter(|| run_get_exchange(&t3d, x, y, &cfg)));
    g.finish();
}

/// Extension: MPI derived datatypes — pack vs direct.
fn extension_datatypes(c: &mut Criterion) {
    let t3d = Machine::t3d();
    let column = Datatype::vector(WORDS, 1, WORDS);
    let rows = Datatype::contiguous(WORDS);
    let cfg = ExchangeConfig::default();
    let pack = run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Pack, &cfg);
    let direct = run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Direct, &cfg);
    eprintln!(
        "[extension_datatypes] T3D column datatype: pack {:.1} MB/s, direct {:.1} MB/s",
        pack.per_node(t3d.clock()).as_mbps(),
        direct.per_node(t3d.clock()).as_mbps()
    );
    let mut g = c.benchmark_group("extension_datatypes");
    g.sample_size(10);
    g.bench_function("pack", |b| {
        b.iter(|| run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Pack, &cfg))
    });
    g.bench_function("direct", |b| {
        b.iter(|| run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Direct, &cfg))
    });
    g.finish();
}

/// Node-level scenario sanity bench: the raw simulator speed.
fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.bench_function("t3d local copy 2k words", |b| {
        let m = Machine::t3d();
        b.iter(|| {
            let mut node = Node::new(m.node);
            let src = node.alloc_walk(AccessPattern::Contiguous, WORDS, None);
            let dst = node.alloc_walk(AccessPattern::Contiguous, WORDS, None);
            scenario::run_local_copy(&mut node, &src, &dst)
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    // The simulations are deterministic; short measurement windows give
    // stable numbers and keep `cargo bench` under a few minutes.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = fig1_libraries,
    table1_local_copies,
    fig4_stride_sweep,
    table2_send,
    table3_receive,
    table4_network,
    fig7_t3d_styles,
    fig8_paragon_styles,
    table5_loads_vs_stores,
    table6_kernels,
    ablation_wbq,
    ablation_readahead,
    ablation_pfq,
    ablation_interleave,
    ablation_chunk,
    extension_put_vs_get,
    extension_datatypes,
    simulator_throughput
);

criterion_main!(benches);
