//! Dependency-free benches: one group per table/figure of the paper, plus
//! the ablation reports DESIGN.md calls out. Each bench runs the
//! corresponding simulation at a reduced size (the `repro` binary runs the
//! full-size versions); ablation groups also print the simulated
//! throughput effect, so `cargo bench` output doubles as the ablation
//! report.
//!
//! The harness is a plain `main` (Cargo `harness = false`): every target
//! runs a warm-up pass, then reports the best-of-N wall time. The
//! simulations are deterministic, so short windows give stable numbers.

use std::time::Instant;

use memcomm_bench::experiments::{self, parse_q};
use memcomm_commops::{
    measure_message, run_datatype_exchange, run_exchange, run_get_exchange, Datatype,
    DatatypeMethod, ExchangeConfig, LibraryProfile, Style,
};
use memcomm_kernels::apps::{CommMethod, FemKernel, SorKernel, TransposeKernel};
use memcomm_machines::{memo, microbench, Machine};
use memcomm_memsim::scenario;
use memcomm_memsim::Node;
use memcomm_model::{AccessPattern, BasicTransfer};
use memcomm_netsim::link::measure_wire_rate;

const WORDS: u64 = 2048;
const ITERS: u32 = 5;

/// Times one closure: warm-up once, then best-of-`ITERS` wall time.
/// The memo cache is cleared per iteration so benches measure simulation,
/// not cache lookups.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    memo::reset();
    f();
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        memo::reset();
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    println!("{group}/{name}: {best:.3} ms");
}

fn machines() -> [Machine; 2] {
    [Machine::t3d(), Machine::paragon()]
}

fn fig1_libraries() {
    for m in machines() {
        bench("fig1_libraries", &format!("{} pvm 4KiB", m.name), || {
            let _ = measure_message(&m, LibraryProfile::pvm(&m), 512);
        });
        bench(
            "fig1_libraries",
            &format!("{} low-level 4KiB", m.name),
            || {
                let _ = measure_message(&m, LibraryProfile::low_level(&m), 512);
            },
        );
    }
}

fn table1_local_copies() {
    for m in machines() {
        for op in ["1C1", "1C64", "wC1"] {
            let t = BasicTransfer::parse(op).expect("notation");
            bench("table1_local_copies", &format!("{} {op}", m.name), || {
                let _ = microbench::measure_basic(&m, t, WORDS);
            });
        }
    }
}

fn fig4_stride_sweep() {
    for m in machines() {
        bench("fig4_stride_sweep", m.name, || {
            let _ = microbench::stride_sweep(
                &m,
                &[2, 8, 32, 128],
                WORDS,
                microbench::StrideSide::Stores,
            );
        });
    }
}

fn table2_send() {
    for m in machines() {
        for op in ["1S0", "64S0", "1F0"] {
            let t = BasicTransfer::parse(op).expect("notation");
            if !matches!(microbench::measure_basic(&m, t, 64), Ok(Some(_))) {
                continue;
            }
            bench("table2_send", &format!("{} {op}", m.name), || {
                let _ = microbench::measure_basic(&m, t, WORDS);
            });
        }
    }
}

fn table3_receive() {
    for m in machines() {
        for op in ["0R1", "0D1", "0D64", "0R64"] {
            let t = BasicTransfer::parse(op).expect("notation");
            if !matches!(microbench::measure_basic(&m, t, 64), Ok(Some(_))) {
                continue;
            }
            bench("table3_receive", &format!("{} {op}", m.name), || {
                let _ = microbench::measure_basic(&m, t, WORDS);
            });
        }
    }
}

fn table4_network() {
    for m in machines() {
        for congestion in [1.0, 2.0, 4.0] {
            bench(
                "table4_network",
                &format!("{} Nd@{congestion}", m.name),
                || {
                    let _ = measure_wire_rate(m.link(congestion), WORDS, false);
                },
            );
        }
        bench("table4_network", &format!("{} Nadp@2", m.name), || {
            let _ = measure_wire_rate(m.link(2.0), WORDS, true);
        });
    }
}

fn exchange_group(group: &str, machine: &Machine) {
    let cfg = experiments::paper_exchange_cfg(machine, WORDS);
    for op in ["1Q1", "1Q64", "wQw"] {
        let (x, y) = parse_q(op);
        bench(group, &format!("{op} buffer-packing"), || {
            let _ = run_exchange(machine, x, y, Style::BufferPacking, &cfg);
        });
        bench(group, &format!("{op} chained"), || {
            let _ = run_exchange(machine, x, y, Style::Chained, &cfg);
        });
    }
}

fn table5_loads_vs_stores() {
    for m in machines() {
        let cfg = experiments::paper_exchange_cfg(&m, WORDS);
        for op in ["1Q16", "16Q1"] {
            let (x, y) = parse_q(op);
            bench(
                "table5_loads_vs_stores",
                &format!("{} {op} chained", m.name),
                || {
                    let _ = run_exchange(&m, x, y, Style::Chained, &cfg);
                },
            );
        }
    }
}

fn table6_kernels() {
    let t3d = Machine::t3d();
    let transpose = TransposeKernel::paper_instance();
    let fem = FemKernel::paper_instance();
    let sor = SorKernel::paper_instance();
    bench("table6_kernels", "transpose chained", || {
        let _ = transpose.measure(&t3d, CommMethod::Chained);
    });
    bench("table6_kernels", "fem chained", || {
        let _ = fem.measure(&t3d, CommMethod::Chained);
    });
    bench("table6_kernels", "sor chained", || {
        let _ = sor.measure(&t3d, CommMethod::Chained);
    });
}

// ------------------------------------------------------------- Ablations

fn copy_rate(machine: &Machine, op: &str) -> f64 {
    let t = BasicTransfer::parse(op).expect("notation");
    microbench::measure_rate(machine, t, WORDS)
        .ok()
        .flatten()
        .map_or(f64::NAN, |r| r.as_mbps())
}

/// T3D write-back queue on/off: strided stores lose their advantage.
fn ablation_wbq() {
    let on = Machine::t3d();
    let mut off = Machine::t3d();
    off.node.path.wbq.entries = 1;
    off.node.path.wbq.merge = false;
    off.node.path.dram.posted_write_miss_cycles = off.node.path.dram.write_miss_cycles;
    eprintln!(
        "[ablation_wbq] T3D 1C64: wbq on {:.1} MB/s, off {:.1} MB/s",
        copy_rate(&on, "1C64"),
        copy_rate(&off, "1C64")
    );
    bench("ablation_wbq", "on", || {
        let _ = copy_rate(&on, "1C64");
    });
    bench("ablation_wbq", "off", || {
        let _ = copy_rate(&off, "1C64");
    });
}

/// T3D read-ahead on/off — the paper cites ≈60% for contiguous loads.
fn ablation_readahead() {
    let on = Machine::t3d();
    let mut off = Machine::t3d();
    off.node.path.readahead.enabled = false;
    eprintln!(
        "[ablation_readahead] T3D 1C0 load stream: rdal on {:.1} MB/s, off {:.1} MB/s",
        copy_rate(&on, "1C0"),
        copy_rate(&off, "1C0")
    );
    bench("ablation_readahead", "on", || {
        let _ = copy_rate(&on, "1C0");
    });
    bench("ablation_readahead", "off", || {
        let _ = copy_rate(&off, "1C0");
    });
}

/// Paragon pipelined loads on/off — the paper cites a 30–40% loss.
fn ablation_pfq() {
    let on = Machine::paragon();
    let mut off = Machine::paragon();
    off.node.cpu.pfq.enabled = false;
    eprintln!(
        "[ablation_pfq] Paragon 64C1: pfld on {:.1} MB/s, off {:.1} MB/s",
        copy_rate(&on, "64C1"),
        copy_rate(&off, "64C1")
    );
    bench("ablation_pfq", "on", || {
        let _ = copy_rate(&on, "64C1");
    });
    bench("ablation_pfq", "off", || {
        let _ = copy_rate(&off, "64C1");
    });
}

/// Paragon bus fine-grain interleave penalty — the paper cites up to 50%
/// when processor and co-processor interleave single-word accesses.
fn ablation_interleave() {
    let base = Machine::paragon();
    let mut heavy = Machine::paragon();
    heavy.node.path.switch_penalty_cycles = 6;
    let cfg = experiments::paper_exchange_cfg(&base, WORDS);
    let full_duplex = ExchangeConfig {
        full_duplex: true,
        ..cfg
    };
    let (x, y) = parse_q("wQw");
    let r = |m: &Machine| {
        run_exchange(m, x, y, Style::Chained, &full_duplex)
            .expect("simulates")
            .per_node(m.clock())
            .as_mbps()
    };
    eprintln!(
        "[ablation_interleave] Paragon wQ'w full duplex: penalty 2cyc {:.1} MB/s, 6cyc {:.1} MB/s",
        r(&base),
        r(&heavy)
    );
    bench("ablation_interleave", "penalty2", || {
        let _ = r(&base);
    });
    bench("ablation_interleave", "penalty6", || {
        let _ = r(&heavy);
    });
}

/// Buffer-packing chunk size: store-and-forward vs pipelined chunks.
fn ablation_chunk() {
    let t3d = Machine::t3d();
    let rate = |chunk: Option<u64>| {
        let cfg = ExchangeConfig {
            words: WORDS,
            chunk_words: chunk,
            ..ExchangeConfig::default()
        };
        let (x, y) = parse_q("1Q64");
        run_exchange(&t3d, x, y, Style::BufferPacking, &cfg)
            .expect("simulates")
            .per_node(t3d.clock())
            .as_mbps()
    };
    eprintln!(
        "[ablation_chunk] T3D 1Q64 bp: store-and-forward {:.1} MB/s, 256-word chunks {:.1} MB/s",
        rate(None),
        rate(Some(256))
    );
    bench("ablation_chunk", "store-and-forward", || {
        let _ = rate(None);
    });
    bench("ablation_chunk", "chunk256", || {
        let _ = rate(Some(256));
    });
}

/// Extension: deposits (put) vs withdrawals (get).
fn extension_put_vs_get() {
    let t3d = Machine::t3d();
    let cfg = ExchangeConfig {
        words: WORDS,
        ..ExchangeConfig::default()
    };
    let (x, y) = parse_q("1Q64");
    let put = run_exchange(&t3d, x, y, Style::Chained, &cfg).expect("simulates");
    let get = run_get_exchange(&t3d, x, y, &cfg).expect("simulates");
    eprintln!(
        "[extension_put_vs_get] T3D 1Q64: put {:.1} MB/s, get {:.1} MB/s",
        put.per_node(t3d.clock()).as_mbps(),
        get.per_node(t3d.clock()).as_mbps()
    );
    bench("extension_put_vs_get", "put", || {
        let _ = run_exchange(&t3d, x, y, Style::Chained, &cfg);
    });
    bench("extension_put_vs_get", "get", || {
        let _ = run_get_exchange(&t3d, x, y, &cfg);
    });
}

/// Extension: MPI derived datatypes — pack vs direct.
fn extension_datatypes() {
    let t3d = Machine::t3d();
    let column = Datatype::vector(WORDS, 1, WORDS);
    let rows = Datatype::contiguous(WORDS);
    let cfg = ExchangeConfig::default();
    let pack =
        run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Pack, &cfg).expect("simulates");
    let direct = run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Direct, &cfg)
        .expect("simulates");
    eprintln!(
        "[extension_datatypes] T3D column datatype: pack {:.1} MB/s, direct {:.1} MB/s",
        pack.per_node(t3d.clock()).as_mbps(),
        direct.per_node(t3d.clock()).as_mbps()
    );
    bench("extension_datatypes", "pack", || {
        let _ = run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Pack, &cfg);
    });
    bench("extension_datatypes", "direct", || {
        let _ = run_datatype_exchange(&t3d, &rows, &column, DatatypeMethod::Direct, &cfg);
    });
}

/// Node-level scenario sanity bench: the raw simulator speed.
fn simulator_throughput() {
    let m = Machine::t3d();
    bench("simulator_throughput", "t3d local copy 2k words", || {
        let mut node = Node::new(m.node);
        let src = node
            .alloc_walk(AccessPattern::Contiguous, WORDS, None)
            .expect("alloc");
        let dst = node
            .alloc_walk(AccessPattern::Contiguous, WORDS, None)
            .expect("alloc");
        let _ = scenario::run_local_copy(&mut node, &src, &dst);
    });
}

fn main() {
    // `cargo bench` passes filter/`--bench` arguments; run everything and
    // ignore them (Cargo's own harness flag handling is not emulated).
    fig1_libraries();
    table1_local_copies();
    fig4_stride_sweep();
    table2_send();
    table3_receive();
    table4_network();
    exchange_group("fig7_t3d_styles", &Machine::t3d());
    exchange_group("fig8_paragon_styles", &Machine::paragon());
    table5_loads_vs_stores();
    table6_kernels();
    ablation_wbq();
    ablation_readahead();
    ablation_pfq();
    ablation_interleave();
    ablation_chunk();
    extension_put_vs_get();
    extension_datatypes();
    simulator_throughput();
}
