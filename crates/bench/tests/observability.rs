//! Observability contracts of the sweep engine.
//!
//! * With tracing and metrics enabled, the deterministic report must stay
//!   byte-identical whatever the worker count — observability is strictly
//!   read-only with respect to results.
//! * The Chrome trace produced for a tiny fixed scenario must be
//!   structurally valid: well-formed JSON, monotone timestamps per track,
//!   balanced and properly nested `B`/`E` pairs.

use std::collections::BTreeSet;

use memcomm_bench::runner::{run_sweep, SweepOptions};
use memcomm_commops::{run_exchange, ExchangeConfig, Style};
use memcomm_machines::Machine;
use memcomm_model::AccessPattern;
use memcomm_obs::{chrome, Obs};

fn obs_opts(jobs: usize) -> SweepOptions {
    SweepOptions {
        jobs,
        micro_words: 1024,
        exchange_words: 512,
        sections: ["calibration", "table2", "accuracy"]
            .iter()
            .map(|s| s.to_string())
            .collect::<BTreeSet<_>>(),
        phases: true,
        ..SweepOptions::default()
    }
}

#[test]
fn report_is_byte_identical_across_jobs_with_observability_on() {
    // Both runs trace and meter; only the report bytes are compared.
    let obs1 = Obs::new(true);
    let serial = {
        let _guard = obs1.install();
        run_sweep(&obs_opts(1)).0.to_json().render()
    };
    let obs4 = Obs::new(true);
    let parallel = {
        let _guard = obs4.install();
        run_sweep(&obs_opts(4)).0.to_json().render()
    };
    assert_eq!(
        serial, parallel,
        "observability must not perturb the deterministic report"
    );
    assert!(
        serial.contains("\"phases\""),
        "phase attribution must appear when requested"
    );
    // Both runs recorded spans of their own.
    assert!(obs1.trace_len() > 0 && obs4.trace_len() > 0);
}

#[test]
fn phases_key_is_absent_when_not_requested() {
    let opts = SweepOptions {
        phases: false,
        ..obs_opts(1)
    };
    let (report, _) = run_sweep(&opts);
    assert!(
        !report.to_json().render().contains("\"phases\""),
        "default reports must keep their pre-observability shape"
    );
}

#[test]
fn chrome_trace_of_a_tiny_scenario_is_structurally_valid() {
    let obs = Obs::new(true);
    let _guard = obs.install();
    let machine = Machine::t3d();
    let cfg = ExchangeConfig {
        words: 128,
        ..ExchangeConfig::default()
    };
    for style in [Style::BufferPacking, Style::Chained] {
        let r = run_exchange(
            &machine,
            AccessPattern::Contiguous,
            AccessPattern::strided(8).unwrap(),
            style,
            &cfg,
        )
        .expect("exchange");
        assert!(r.verified);
    }
    assert_eq!(obs.trace_dropped(), 0, "tiny scenario must fit the buffer");

    let text = obs.chrome_trace().expect("tracing is on");
    let stats = chrome::validate(&text).expect("structurally valid trace");
    assert!(stats.events > 0);
    assert!(stats.spans > 0, "scenario and stage spans must be present");
    assert!(
        stats.tracks >= 3,
        "scenario, phase and engine tracks expected, got {}",
        stats.tracks
    );
    assert!(
        stats.max_depth >= 2,
        "stage spans must nest inside the scenario span"
    );
    for name in ["scenario", "pack", "wire"] {
        assert!(text.contains(name), "trace must mention {name}");
    }
}
