//! The experiment functions, one per table/figure.
//!
//! Every function that sweeps independent points (message sizes, transfer
//! notations, `xQy` operations) fans them out across the process-default
//! worker count via [`memcomm_util::par::par_map_auto`]. Results come back
//! in input order and basic-transfer measurements are memoized
//! process-wide, so output is bit-identical whatever the worker count.

use memcomm_util::par::par_map_auto;

use memcomm_commops::{
    measure_message, run_exchange, run_get_exchange, run_resilient_transfer, ExchangeConfig,
    LibraryProfile, ProtocolConfig, Style,
};
use memcomm_kernels::apps::{CommMethod, FemKernel, SorKernel, TransposeKernel};
use memcomm_kernels::mesh::PartitionedMesh;
use memcomm_kernels::netrun::{self, EngineOptions, Table6Kernel};
use memcomm_machines::calibrate;
use memcomm_machines::microbench::{self, StrideSide};
use memcomm_machines::{reference, Machine};
use memcomm_memsim::clock::Cycle;
use memcomm_memsim::fault::{FaultConfig, FaultPlan};
use memcomm_memsim::SimResult;
use memcomm_model::{
    buffer_packing_expr, chained_expr, AccessPattern, BasicTransfer, BufferPackingPlan,
    ChainedPlan, RateTable, ReceiveEngine, SendEngine,
};
use memcomm_netsim::link::measure_wire_rate;

/// Default payload for microbenchmark measurements (words).
pub const MICRO_WORDS: u64 = 16 * 1024;
/// Default payload for end-to-end exchanges (words).
pub const EXCHANGE_WORDS: u64 = 8 * 1024;

/// Parses the `xQy` shorthand used throughout the harness.
///
/// # Panics
///
/// Panics on malformed operation names (they are compile-time constants
/// here).
pub fn parse_q(op: &str) -> (AccessPattern, AccessPattern) {
    let (x, y) = op.split_once('Q').expect("ops are written xQy");
    let pat = |s: &str| match s {
        "1" => AccessPattern::Contiguous,
        "w" => AccessPattern::Indexed,
        n => AccessPattern::strided(n.parse().expect("stride")).expect("stride >= 2"),
    };
    (pat(x), pat(y))
}

/// The machine-appropriate buffer-packing plan (Sections 5.1.1 / 5.1.3).
pub fn bp_plan(machine: &Machine) -> BufferPackingPlan {
    BufferPackingPlan {
        send: if machine.caps.fetch_send {
            SendEngine::Dma
        } else {
            SendEngine::Processor
        },
        recv: ReceiveEngine::Deposit,
        elide_contiguous_copies: false,
        overlap_unpack: false,
    }
}

/// The machine-appropriate chained plan (Sections 5.1.2 / 5.1.4).
pub fn chained_plan(machine: &Machine) -> ChainedPlan {
    ChainedPlan {
        recv: if machine.caps.deposit_noncontiguous {
            ReceiveEngine::Deposit
        } else {
            ReceiveEngine::Processor
        },
    }
}

/// The exchange configuration reproducing the paper's methodology on a
/// machine (the Paragon measurements were half duplex).
pub fn paper_exchange_cfg(machine: &Machine, words: u64) -> ExchangeConfig {
    ExchangeConfig {
        words,
        full_duplex: !machine.caps.fetch_send,
        ..ExchangeConfig::default()
    }
}

// ---------------------------------------------------------------- Figure 1

/// One message size of Figure 1.
#[derive(Debug, Clone)]
pub struct Figure1Point {
    /// Message size in 64-bit words.
    pub message_words: u64,
    /// PVM-style throughput (MB/s).
    pub pvm: f64,
    /// Low-level library throughput (MB/s).
    pub low_level: f64,
}

/// Figure 1: library throughput vs message size on one machine.
///
/// # Errors
///
/// Propagates simulation failures from the message measurements.
pub fn figure1(machine: &Machine) -> SimResult<Vec<Figure1Point>> {
    let sizes = [16u64, 64, 256, 1024, 4096, 16384, 65536];
    par_map_auto(&sizes, |&words| {
        Ok(Figure1Point {
            message_words: words,
            pvm: measure_message(machine, LibraryProfile::pvm(machine), words)?.as_mbps(),
            low_level: measure_message(machine, LibraryProfile::low_level(machine), words)?
                .as_mbps(),
        })
    })
    .into_iter()
    .collect()
}

// ------------------------------------------------------------- Tables 1–3

/// One basic-transfer rate, simulated vs paper.
#[derive(Debug, Clone)]
pub struct RateRow {
    /// Transfer notation (e.g. `"1C64"`).
    pub transfer: String,
    /// Simulated rate (MB/s).
    pub simulated: f64,
    /// The paper's figure, when it reports one.
    pub paper: Option<f64>,
}

fn rate_rows(machine: &Machine, notations: &[&str], words: u64) -> SimResult<Vec<RateRow>> {
    let paper = calibrate::reference_rates(machine);
    let rows: SimResult<Vec<Option<RateRow>>> = par_map_auto(notations, |s| {
        let t = BasicTransfer::parse(s).expect("notation constants");
        Ok(
            microbench::measure_rate(machine, t, words)?.map(|rate| RateRow {
                transfer: s.to_string(),
                simulated: rate.as_mbps(),
                paper: paper.get(t).map(|p| p.as_mbps()),
            }),
        )
    })
    .into_iter()
    .collect();
    Ok(rows?.into_iter().flatten().collect())
}

/// Table 1: local memory-to-memory copies.
///
/// # Errors
///
/// Propagates simulation failures from the rate measurements.
pub fn table1(machine: &Machine, words: u64) -> SimResult<Vec<RateRow>> {
    rate_rows(machine, &["1C1", "1C64", "64C1", "1Cw", "wC1"], words)
}

/// Table 2: send transfers.
///
/// # Errors
///
/// Propagates simulation failures from the rate measurements.
pub fn table2(machine: &Machine, words: u64) -> SimResult<Vec<RateRow>> {
    rate_rows(machine, &["1S0", "1F0", "64S0", "wS0"], words)
}

/// Table 3: receive transfers.
///
/// # Errors
///
/// Propagates simulation failures from the rate measurements.
pub fn table3(machine: &Machine, words: u64) -> SimResult<Vec<RateRow>> {
    rate_rows(
        machine,
        &["0R1", "0D1", "0R64", "0D64", "0Rw", "0Dw"],
        words,
    )
}

// --------------------------------------------------------------- Figure 4

/// One stride of Figure 4.
#[derive(Debug, Clone)]
pub struct StridePoint {
    /// Stride in words.
    pub stride: u32,
    /// `sC1` (strided loads) throughput.
    pub loads: f64,
    /// `1Cs` (strided stores) throughput.
    pub stores: f64,
}

/// Figure 4: local copy throughput vs stride.
///
/// # Errors
///
/// Propagates simulation failures from either stride sweep.
pub fn figure4(machine: &Machine, words: u64) -> SimResult<Vec<StridePoint>> {
    let strides = [2u32, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128];
    let loads = microbench::stride_sweep(machine, &strides, words, StrideSide::Loads)?;
    let stores = microbench::stride_sweep(machine, &strides, words, StrideSide::Stores)?;
    Ok(loads
        .into_iter()
        .zip(stores)
        .map(|((stride, l), (_, s))| StridePoint {
            stride,
            loads: l.as_mbps(),
            stores: s.as_mbps(),
        })
        .collect())
}

// ---------------------------------------------------------------- Table 4

/// One congestion row of Table 4.
#[derive(Debug, Clone)]
pub struct NetworkRow {
    /// Congestion factor.
    pub congestion: f64,
    /// Simulated data-only bandwidth.
    pub data_only: f64,
    /// Simulated address-data-pair bandwidth.
    pub addr_data: f64,
    /// Paper's data-only figure.
    pub paper_data_only: f64,
    /// Paper's address-data-pair figure.
    pub paper_addr_data: f64,
}

/// Table 4: network bandwidth as a function of congestion.
pub fn table4(machine: &Machine, words: u64) -> Vec<NetworkRow> {
    let paper = match machine.name {
        "Cray T3D" => reference::t3d_network(),
        _ => reference::paragon_network(),
    };
    paper
        .into_iter()
        .map(|row| {
            let link = machine.link(row.congestion);
            NetworkRow {
                congestion: row.congestion,
                data_only: measure_wire_rate(link, words, false)
                    .throughput(machine.clock())
                    .as_mbps(),
                addr_data: measure_wire_rate(link, words, true)
                    .throughput(machine.clock())
                    .as_mbps(),
                paper_data_only: row.data_only.as_mbps(),
                paper_addr_data: row.addr_data.as_mbps(),
            }
        })
        .collect()
}

// --------------------------------------- Section 5 / Figures 7 and 8

/// One `xQy` comparison row.
#[derive(Debug, Clone)]
pub struct QRow {
    /// Operation (e.g. `"1Q64"`).
    pub op: String,
    /// End-to-end simulated, buffer packing.
    pub sim_bp: f64,
    /// End-to-end simulated, chained.
    pub sim_chained: f64,
    /// Model estimate from the *simulated* rate table, buffer packing.
    pub model_bp: f64,
    /// Model estimate from the simulated rate table, chained.
    pub model_chained: f64,
    /// The paper's model estimate, buffer packing (where given).
    pub paper_model_bp: Option<f64>,
    /// The paper's model estimate, chained (where given).
    pub paper_model_chained: Option<f64>,
    /// Whether the co-simulated transfers were verified end to end.
    pub verified: bool,
}

/// Section 5 (Figures 7/8): buffer packing vs chained for a spread of
/// access patterns, simulated end to end and estimated by the model from
/// the machine's simulated rate table.
/// # Errors
///
/// Propagates simulation failures from the co-simulated exchanges.
pub fn section5(machine: &Machine, rates: &RateTable, words: u64) -> SimResult<Vec<QRow>> {
    let paper: Vec<reference::QPoint> = match machine.name {
        "Cray T3D" => reference::t3d_q_model(),
        _ => reference::paragon_q_model(),
    };
    let ops = [
        "1Q1", "1Q16", "16Q1", "1Q64", "64Q1", "16Q64", "1Qw", "wQ1", "wQw",
    ];
    let cfg = paper_exchange_cfg(machine, words);
    par_map_auto(&ops, |op| {
        let (x, y) = parse_q(op);
        let bp = run_exchange(machine, x, y, Style::BufferPacking, &cfg)?;
        let ch = run_exchange(machine, x, y, Style::Chained, &cfg)?;
        let model_bp = buffer_packing_expr(x, y, bp_plan(machine))
            .and_then(|e| e.estimate(rates))
            .map(|t| t.as_mbps())
            .unwrap_or(f64::NAN);
        let model_ch = chained_expr(x, y, chained_plan(machine))
            .and_then(|e| e.estimate(rates))
            .map(|t| t.as_mbps())
            .unwrap_or(f64::NAN);
        let paper_point = paper.iter().find(|p| p.op == *op);
        Ok(QRow {
            op: op.to_string(),
            sim_bp: bp.per_node(machine.clock()).as_mbps(),
            sim_chained: ch.per_node(machine.clock()).as_mbps(),
            model_bp,
            model_chained: model_ch,
            paper_model_bp: paper_point.map(|p| p.buffer_packing.as_mbps()),
            paper_model_chained: paper_point.map(|p| p.chained.as_mbps()),
            verified: bp.verified && ch.verified,
        })
    })
    .into_iter()
    .collect()
}

// ---------------------------------------------------------------- Table 5

/// One Table 5 row.
#[derive(Debug, Clone)]
pub struct LoadsVsStoresRow {
    /// `"1Q16"` (strided stores) or `"16Q1"` (strided loads).
    pub op: String,
    /// Machine name.
    pub machine: String,
    /// Simulated, buffer packing.
    pub sim_bp: f64,
    /// Simulated, chained.
    pub sim_chained: f64,
    /// Paper measured, buffer packing.
    pub paper_measured_bp: f64,
    /// Paper measured, chained.
    pub paper_measured_chained: f64,
    /// Paper model, buffer packing.
    pub paper_model_bp: f64,
    /// Paper model, chained.
    pub paper_model_chained: f64,
}

/// Table 5: strided loads vs strided stores on both machines.
///
/// # Errors
///
/// Propagates simulation failures from the co-simulated exchanges.
pub fn table5(words: u64) -> SimResult<Vec<LoadsVsStoresRow>> {
    let rows = reference::table5();
    par_map_auto(&rows, |r| {
        let machine = if r.machine == "Cray T3D" {
            Machine::t3d()
        } else {
            Machine::paragon()
        };
        let (x, y) = parse_q(r.op);
        let cfg = paper_exchange_cfg(&machine, words);
        let bp = run_exchange(&machine, x, y, Style::BufferPacking, &cfg)?;
        let ch = run_exchange(&machine, x, y, Style::Chained, &cfg)?;
        Ok(LoadsVsStoresRow {
            op: r.op.to_string(),
            machine: r.machine.to_string(),
            sim_bp: bp.per_node(machine.clock()).as_mbps(),
            sim_chained: ch.per_node(machine.clock()).as_mbps(),
            paper_measured_bp: r.measured_bp.as_mbps(),
            paper_measured_chained: r.measured_chained.as_mbps(),
            paper_model_bp: r.model_bp.as_mbps(),
            paper_model_chained: r.model_chained.as_mbps(),
        })
    })
    .into_iter()
    .collect()
}

// --------------------------------------------- Extension: model accuracy

/// One point of the model-accuracy grid.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Operation.
    pub op: String,
    /// Style label.
    pub style: String,
    /// Model estimate from the simulated rate table.
    pub model: f64,
    /// End-to-end simulated rate.
    pub simulated: f64,
    /// `simulated / model`.
    pub ratio: f64,
}

/// Quantifies "although simple, the model is highly accurate in the cases
/// that we have evaluated so far" over a grid of operations and both
/// styles: the model estimate (from the machine's simulated rate table)
/// against the end-to-end co-simulation.
///
/// # Errors
///
/// Propagates simulation failures from the co-simulated exchanges.
pub fn model_accuracy(
    machine: &Machine,
    rates: &RateTable,
    words: u64,
) -> SimResult<Vec<AccuracyRow>> {
    let cfg = paper_exchange_cfg(machine, words);
    let ops = [
        "1Q1", "1Q8", "8Q1", "1Q64", "64Q1", "1Qw", "wQ1", "wQw", "16Q64",
    ];
    let grid: Vec<(&str, Style)> = ops
        .iter()
        .flat_map(|&op| [(op, Style::BufferPacking), (op, Style::Chained)])
        .collect();
    let rows: SimResult<Vec<Option<AccuracyRow>>> = par_map_auto(&grid, |&(op, style)| {
        let (x, y) = parse_q(op);
        let expr = match style {
            Style::BufferPacking => buffer_packing_expr(x, y, bp_plan(machine)),
            Style::Chained => chained_expr(x, y, chained_plan(machine)),
        };
        let model = match expr.and_then(|e| e.estimate(rates)) {
            Ok(t) => t,
            Err(_) => return Ok(None),
        };
        let run = run_exchange(machine, x, y, style, &cfg)?;
        debug_assert!(run.verified);
        let simulated = run.per_node(machine.clock()).as_mbps();
        Ok(Some(AccuracyRow {
            op: op.to_string(),
            style: match style {
                Style::BufferPacking => "buffer-packing".to_string(),
                Style::Chained => "chained".to_string(),
            },
            model: model.as_mbps(),
            simulated,
            ratio: simulated / model.as_mbps(),
        }))
    })
    .into_iter()
    .collect();
    Ok(rows?.into_iter().flatten().collect())
}

/// Mean absolute log-ratio of an accuracy grid (0 = perfect).
pub fn accuracy_mean_log_error(rows: &[AccuracyRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.ratio.ln().abs()).sum::<f64>() / rows.len() as f64
}

// ------------------------------------------- Extension: problem-size scaling

/// One problem size of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Matrix dimension of the transpose workload.
    pub n: u64,
    /// Patch words per pairwise exchange at 64 nodes.
    pub patch_words: u64,
    /// PVM per-node rate.
    pub pvm: f64,
    /// Buffer-packing per-node rate.
    pub buffer_packing: f64,
    /// Chained per-node rate.
    pub chained: f64,
}

/// Section 2's observation, reproduced: "the effective communication
/// throughput never reaches peak bandwidth, even if applications are scaled
/// to giant problem sizes... it is not the constant per message
/// overhead... but rather overheads that occur for each byte transferred."
/// Sweeps the transpose workload's matrix size on the simulated T3D.
///
/// # Errors
///
/// Propagates simulation failures from the kernel measurements.
pub fn scaling(machine: &Machine) -> SimResult<Vec<ScalingPoint>> {
    // n = 2048 is the largest whose stride-n destination region fits the
    // simulated node memory (a stride-4096 patch spans 256 MB).
    let sizes = [128u64, 256, 512, 1024, 2048];
    par_map_auto(&sizes, |&n| {
        let kernel = TransposeKernel {
            n,
            words_per_element: 2,
        };
        let p = machine.topology.len() as u64;
        let measure =
            |method| -> SimResult<f64> { Ok(kernel.measure(machine, method)?.per_node.as_mbps()) };
        Ok(ScalingPoint {
            n,
            patch_words: kernel.patch_words(p),
            pvm: measure(CommMethod::Pvm)?,
            buffer_packing: measure(CommMethod::BufferPacking)?,
            chained: measure(CommMethod::Chained)?,
        })
    })
    .into_iter()
    .collect()
}

// --------------------------------------------------- Extension: put vs get

/// One row of the put-vs-get extension experiment.
#[derive(Debug, Clone)]
pub struct PutGetRow {
    /// Operation.
    pub op: String,
    /// Chained put (remote stores) per-node rate.
    pub put: f64,
    /// Get (remote loads through the annex) per-node rate.
    pub get: f64,
    /// Both verified.
    pub verified: bool,
}

/// Extension (paper footnote 2): deposits ("put") vs withdrawals ("get").
/// Not a paper table — the paper asserts the put preference and moves on;
/// this measures it.
///
/// # Errors
///
/// Propagates simulation failures from either transfer direction.
pub fn put_vs_get(machine: &Machine, words: u64) -> SimResult<Vec<PutGetRow>> {
    let ops = ["1Q1", "1Q64", "wQw"];
    par_map_auto(&ops, |op| {
        let (x, y) = parse_q(op);
        let cfg = ExchangeConfig {
            words,
            ..ExchangeConfig::default()
        };
        let put = run_exchange(machine, x, y, Style::Chained, &cfg)?;
        let get = run_get_exchange(machine, x, y, &cfg)?;
        Ok(PutGetRow {
            op: op.to_string(),
            put: put.per_node(machine.clock()).as_mbps(),
            get: get.per_node(machine.clock()).as_mbps(),
            verified: put.verified && get.verified,
        })
    })
    .into_iter()
    .collect()
}

// ------------------------------------------------------------ Section 3.4.1

/// The worked transpose example.
#[derive(Debug, Clone)]
pub struct Section341 {
    /// Our model estimate of `|1Q1024|` from the simulated rate table.
    pub model_estimate: f64,
    /// Our end-to-end simulated transpose communication rate.
    pub simulated: f64,
    /// The paper's estimate (25.0 MB/s).
    pub paper_estimate: f64,
    /// The paper's measurement (20.0 MB/s).
    pub paper_measured: f64,
}

/// Section 3.4.1: `|1Q1024|` estimated vs simulated on the T3D.
///
/// # Errors
///
/// Propagates simulation failures from the transpose measurement.
pub fn section341(rates: &RateTable) -> SimResult<Section341> {
    let t3d = Machine::t3d();
    let (x, y) = parse_q("1Q1024");
    let estimate = buffer_packing_expr(x, y, bp_plan(&t3d))
        .and_then(|e| e.estimate(rates))
        .map(|t| t.as_mbps())
        .unwrap_or(f64::NAN);
    let measured = TransposeKernel::paper_instance()
        .measure(&t3d, CommMethod::BufferPacking)?
        .per_node
        .as_mbps();
    let (paper_est, paper_meas) = reference::section_341();
    Ok(Section341 {
        model_estimate: estimate,
        simulated: measured,
        paper_estimate: paper_est.as_mbps(),
        paper_measured: paper_meas.as_mbps(),
    })
}

// ---------------------------------------------------------------- Table 6

/// One kernel row of Table 6.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated, buffer packing.
    pub sim_bp: f64,
    /// Simulated, chained.
    pub sim_chained: f64,
    /// Simulated, stock PVM.
    pub sim_pvm: f64,
    /// Our model's chained estimate from the simulated rate table.
    pub model_chained: f64,
    /// Paper measured, buffer packing.
    pub paper_bp: f64,
    /// Paper measured, chained.
    pub paper_chained: f64,
    /// Paper's chained model estimate.
    pub paper_model_chained: f64,
    /// Paper's Cray PVM3 figure (Section 6.2 text).
    pub paper_pvm3: f64,
    /// Congestion factor used.
    pub congestion: f64,
    /// All simulated exchanges verified.
    pub verified: bool,
}

/// Table 6: the application kernels on the (simulated) 64-node T3D.
///
/// # Errors
///
/// Propagates simulation failures from the kernel measurements.
pub fn table6(rates: &RateTable) -> SimResult<Vec<KernelRow>> {
    let t3d = Machine::t3d();
    let paper = reference::table6();
    let transpose = TransposeKernel::paper_instance();
    let fem = FemKernel::paper_instance();
    let sor = SorKernel::paper_instance();

    let mut rows = Vec::new();
    let mut push = |name: &str,
                    bp: memcomm_kernels::KernelMeasurement,
                    ch: memcomm_kernels::KernelMeasurement,
                    pvm: memcomm_kernels::KernelMeasurement,
                    model: f64| {
        let p = paper
            .iter()
            .find(|r| r.kernel == name)
            .expect("paper rows cover all kernels");
        rows.push(KernelRow {
            kernel: name.to_string(),
            sim_bp: bp.per_node.as_mbps(),
            sim_chained: ch.per_node.as_mbps(),
            sim_pvm: pvm.per_node.as_mbps(),
            model_chained: model,
            paper_bp: p.measured_bp.as_mbps(),
            paper_chained: p.measured_chained.as_mbps(),
            paper_model_chained: p.model_chained.as_mbps(),
            paper_pvm3: p.pvm3.as_mbps(),
            congestion: ch.congestion,
            verified: bp.verified && ch.verified && pvm.verified,
        });
    };

    push(
        "Transpose",
        transpose.measure(&t3d, CommMethod::BufferPacking)?,
        transpose.measure(&t3d, CommMethod::Chained)?,
        transpose.measure(&t3d, CommMethod::Pvm)?,
        transpose
            .model_chained(rates)
            .map(|t| t.as_mbps())
            .unwrap_or(f64::NAN),
    );
    push(
        "FEM",
        fem.measure(&t3d, CommMethod::BufferPacking)?,
        fem.measure(&t3d, CommMethod::Chained)?,
        fem.measure(&t3d, CommMethod::Pvm)?,
        fem.model_chained(rates)
            .map(|t| t.as_mbps())
            .unwrap_or(f64::NAN),
    );
    push(
        "SOR",
        sor.measure(&t3d, CommMethod::BufferPacking)?,
        sor.measure(&t3d, CommMethod::Chained)?,
        sor.measure(&t3d, CommMethod::Pvm)?,
        sor.model_chained(rates)
            .map(|t| t.as_mbps())
            .unwrap_or(f64::NAN),
    );
    Ok(rows)
}

/// Options of the event-engine reproduction of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSettings {
    /// Simulated node count (power of two; 64 = the paper's machines).
    pub nodes: usize,
    /// Matrix dimension of the transpose kernel (the paper's 1024; smoke
    /// runs shrink it so tiny node counts don't get giant patches).
    pub transpose_n: u64,
    /// Halo row words of the SOR kernel.
    pub sor_n: u64,
    /// Shard workers (0 = the process-wide setting). Never affects results.
    pub jobs: usize,
    /// Engine shard count (0 = auto: about two per worker). Never affects
    /// results either — the engine folds events in a canonical stage-major
    /// order, so digests are byte-identical at any shard count.
    pub shards: usize,
}

impl Default for EngineSettings {
    /// The paper's instances on 64 simulated nodes.
    fn default() -> Self {
        EngineSettings {
            nodes: 64,
            transpose_n: 1024,
            sor_n: 256,
            jobs: 0,
            shards: 0,
        }
    }
}

/// One Table 6 kernel × machine executed on the discrete-event engine,
/// side by side with the analytic congestion model.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Kernel name.
    pub kernel: String,
    /// Machine name.
    pub machine: String,
    /// Simulated node count.
    pub nodes: u64,
    /// Emergent congestion factor the engine observed.
    pub engine_congestion: f64,
    /// The closed-form factor on the same topology.
    pub analytic_congestion: f64,
    /// Chained throughput priced at the engine's factor, MB/s.
    pub engine_chained: f64,
    /// Chained throughput priced at the analytic factor, MB/s.
    pub analytic_chained: f64,
    /// engine / analytic throughput ratio — the differential statistic.
    pub ratio: f64,
    /// Engine cycles across all rounds.
    pub cycles: u64,
    /// Link traversals across all rounds.
    pub flit_hops: u64,
    /// Conservative windows executed.
    pub windows: u64,
    /// Event-stream digest (hex) — identical at any worker count.
    pub digest: String,
    /// The priced exchanges delivered correct data.
    pub verified: bool,
}

/// FEM partition grid for a power-of-two node count, split like
/// [`scaled_topology`](memcomm_netsim::engine::scaled_topology) splits
/// dimensions (64 → 4×4×4, 4 → 2×2×1).
pub fn fem_parts(nodes: usize) -> [usize; 3] {
    let exp = nodes.trailing_zeros() as usize;
    let mut parts = [1usize; 3];
    for (i, p) in parts.iter_mut().enumerate() {
        *p = 1 << (exp / 3 + usize::from(i < exp % 3));
    }
    parts
}

/// The Table 6 kernels sized for an engine run.
pub fn engine_kernels(settings: &EngineSettings) -> Vec<Table6Kernel> {
    vec![
        Table6Kernel::Transpose(TransposeKernel {
            // The matrix dimension must stay a multiple of the node count,
            // so kilo-node runs grow the paper's 1024 instance with the
            // machine instead of rejecting it.
            n: settings.transpose_n.max(settings.nodes as u64),
            words_per_element: 2,
        }),
        Table6Kernel::Fem(FemKernel {
            mesh: PartitionedMesh::synthetic_valley([48, 48, 48], fem_parts(settings.nodes), 1995),
        }),
        Table6Kernel::Sor(SorKernel { n: settings.sor_n }),
    ]
}

/// Table 6 on the event engine: every kernel × machine executed round by
/// round on the simulated topology, reported against the analytic factor.
///
/// # Errors
///
/// Propagates engine failures (deadlock, watchdog) and invalid
/// kernel/topology decompositions.
pub fn engine_table6(settings: &EngineSettings) -> SimResult<Vec<EngineRow>> {
    let mut rows = Vec::new();
    for machine in [Machine::t3d(), Machine::paragon()] {
        let topo = netrun::engine_topology(&machine, Some(settings.nodes))?;
        let p = topo.len() as u64;
        for kernel in engine_kernels(settings) {
            let rounds = kernel.rounds(&topo)?;
            let analytic_congestion = kernel.analytic_congestion(&machine, &topo)?;
            let opts = EngineOptions {
                nodes: Some(settings.nodes),
                jobs: settings.jobs,
                shards: settings.shards,
                record_events: false,
                sample_every: 0,
                reference_scheduler: false,
            };
            let run = netrun::run_rounds(&machine, &topo, &rounds, &opts)?;
            let engine_m = kernel.measure_at(&machine, CommMethod::Chained, p, run.factor)?;
            let analytic_m =
                kernel.measure_at(&machine, CommMethod::Chained, p, analytic_congestion)?;
            rows.push(EngineRow {
                kernel: kernel.name().to_string(),
                machine: machine.name.to_string(),
                nodes: p,
                engine_congestion: run.factor,
                analytic_congestion,
                engine_chained: engine_m.per_node.as_mbps(),
                analytic_chained: analytic_m.per_node.as_mbps(),
                ratio: engine_m.per_node.as_mbps() / analytic_m.per_node.as_mbps(),
                cycles: run.cycles,
                flit_hops: run.flit_hops,
                windows: run.windows,
                digest: format!("{:016x}", run.digest),
                verified: engine_m.verified && analytic_m.verified,
            });
        }
    }
    Ok(rows)
}

// ----------------------------------------- Robustness: fault injection

/// Fault-injection knobs for the robustness sweep, threaded from the
/// runner's options. The seed never appears in any report row: a zero-rate
/// plan renders byte-identical output whatever its seed, which is the
/// property the fault tests pin down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSettings {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Per-word fault probability on links, FIFOs and engines.
    pub rate: f64,
    /// Probability that an engine site is out for the whole run.
    pub outage_rate: f64,
    /// Cycle budget per transfer (`None` = bounded only by the watchdog).
    pub max_cycles: Option<Cycle>,
}

impl Default for FaultSettings {
    /// No faults, no budget.
    fn default() -> Self {
        FaultSettings {
            seed: 0,
            rate: 0.0,
            outage_rate: 0.0,
            max_cycles: None,
        }
    }
}

impl FaultSettings {
    /// The replayable fault plan these settings describe.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: self.seed,
            rate: self.rate,
            outage_rate: self.outage_rate,
            ..FaultConfig::default()
        })
    }
}

/// One point of the fault-injection robustness grid.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Operation.
    pub op: String,
    /// Style label.
    pub style: String,
    /// End-to-end throughput in MB/s (absent when the transfer failed).
    pub mbps: Option<f64>,
    /// Frames transmitted, including retransmissions.
    pub frames_sent: u64,
    /// Retransmitted frames.
    pub retransmissions: u64,
    /// Whether a chained transfer fell back to CPU receives because its
    /// deposit engine was out.
    pub degraded: bool,
    /// Whether the destination held exactly the source data.
    pub verified: bool,
    /// The error, when the transfer exhausted its retries or cycle budget.
    pub error: Option<String>,
}

/// Robustness grid: sequence-numbered, checksummed, retried transfers under
/// the configured fault plan. Every point reports `ok` or its own error, so
/// a hostile plan degrades the report point by point instead of aborting
/// the sweep.
pub fn faults(machine: &Machine, words: u64, settings: &FaultSettings) -> Vec<FaultRow> {
    let ops = ["1Q1", "1Q64", "wQw"];
    let grid: Vec<(&str, Style)> = ops
        .iter()
        .flat_map(|&op| [(op, Style::BufferPacking), (op, Style::Chained)])
        .collect();
    let cfg = ProtocolConfig {
        words,
        max_cycles: settings.max_cycles,
        ..ProtocolConfig::default()
    };
    par_map_auto(&grid, |&(op, style)| {
        let (x, y) = parse_q(op);
        let style_label = match style {
            Style::BufferPacking => "buffer-packing",
            Style::Chained => "chained",
        };
        match run_resilient_transfer(machine, x, y, style, settings.plan(), &cfg) {
            Ok(r) => FaultRow {
                op: op.to_string(),
                style: style_label.to_string(),
                mbps: Some(r.throughput(machine.clock()).as_mbps()),
                frames_sent: r.frames_sent,
                retransmissions: r.retransmissions,
                degraded: r.degraded,
                verified: r.verified,
                error: None,
            },
            Err(e) => FaultRow {
                op: op.to_string(),
                style: style_label.to_string(),
                mbps: None,
                frames_sent: 0,
                retransmissions: 0,
                degraded: false,
                verified: false,
                error: Some(e.to_string()),
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_q_handles_all_forms() {
        assert_eq!(
            parse_q("1Q1024"),
            (AccessPattern::Contiguous, AccessPattern::Strided(1024))
        );
        assert_eq!(
            parse_q("wQ1"),
            (AccessPattern::Indexed, AccessPattern::Contiguous)
        );
    }

    #[test]
    fn table1_has_paper_references() {
        let rows = table1(&Machine::t3d(), 2048).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.paper.is_some() && r.simulated > 0.0));
    }

    #[test]
    fn table2_skips_missing_hardware() {
        // The T3D has no DMA: 1F0 row absent.
        let rows = table2(&Machine::t3d(), 2048).unwrap();
        assert!(!rows.iter().any(|r| r.transfer == "1F0"));
        let rows = table2(&Machine::paragon(), 2048).unwrap();
        assert!(rows.iter().any(|r| r.transfer == "1F0"));
    }

    #[test]
    fn figure1_curves_grow() {
        let points = figure1(&Machine::t3d()).unwrap();
        assert!(points.last().unwrap().low_level > points.first().unwrap().low_level);
        assert!(points.iter().all(|p| p.low_level > p.pvm));
    }

    #[test]
    fn table4_matches_congestion_halving() {
        let rows = table4(&Machine::paragon(), 4096);
        assert_eq!(rows.len(), 3);
        let r1 = &rows[0];
        let r2 = &rows[1];
        assert!((r1.data_only / r2.data_only - 2.0).abs() < 0.1);
    }

    #[test]
    fn model_accuracy_is_tight_for_buffer_packing() {
        // The reciprocal-sum rule is exact for a time-shared processor:
        // buffer-packing points must sit within a few percent.
        let m = Machine::t3d();
        let rates = microbench::measure_table(&m, 4096).unwrap();
        let rows = model_accuracy(&m, &rates, 2048).unwrap();
        let bp: Vec<&AccuracyRow> = rows
            .iter()
            .filter(|r| r.style == "buffer-packing")
            .collect();
        assert!(bp.len() >= 8);
        for r in &bp {
            assert!(
                (r.ratio - 1.0).abs() < 0.25,
                "{} bp: model {:.1} vs sim {:.1}",
                r.op,
                r.model,
                r.simulated
            );
        }
        // And chained estimates are one-sided: the model never undershoots
        // by much (it ignores only contention, which slows the simulation).
        for r in rows.iter().filter(|r| r.style == "chained") {
            assert!(r.ratio < 1.15, "{} chained overshoot: {:.2}", r.op, r.ratio);
        }
    }

    #[test]
    fn scaling_saturates_below_the_wire() {
        let points = scaling(&Machine::t3d()).unwrap();
        let last = points.last().unwrap();
        let prev = &points[points.len() - 2];
        // Saturation: quadrupling the data buys <15% more throughput...
        assert!(last.chained < prev.chained * 1.15);
        // ...far below the congested wire's 75 MB/s (per-byte costs, as the
        // paper says, not per-message ones).
        assert!(last.chained < 60.0, "chained saturates at {}", last.chained);
        assert!(
            points[0].chained < last.chained,
            "small sizes are overhead-bound"
        );
    }

    #[test]
    fn put_always_beats_get() {
        let rows = put_vs_get(&Machine::t3d(), 1024).unwrap();
        for r in &rows {
            assert!(r.verified);
            assert!(r.put > r.get, "{}: put {} vs get {}", r.op, r.put, r.get);
        }
    }

    #[test]
    fn section5_chained_wins_off_contiguous() {
        let m = Machine::t3d();
        let rates = microbench::measure_table(&m, 2048).unwrap();
        let rows = section5(&m, &rates, 1024).unwrap();
        for r in &rows {
            assert!(r.verified, "{} not verified", r.op);
            assert!(
                r.sim_chained > r.sim_bp,
                "{}: chained {} vs bp {}",
                r.op,
                r.sim_chained,
                r.sim_bp
            );
        }
    }

    #[test]
    fn faults_grid_is_clean_without_a_plan() {
        let rows = faults(&Machine::t3d(), 512, &FaultSettings::default());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.verified && r.error.is_none(),
                "{}/{}: {:?}",
                r.op,
                r.style,
                r.error
            );
            assert_eq!(
                r.retransmissions, 0,
                "{}/{} retried without faults",
                r.op, r.style
            );
            assert!(!r.degraded);
        }
    }

    #[test]
    fn faults_grid_recovers_under_light_faults() {
        let settings = FaultSettings {
            seed: 42,
            rate: 0.005,
            ..FaultSettings::default()
        };
        let rows = faults(&Machine::t3d(), 512, &settings);
        for r in &rows {
            assert!(
                r.verified && r.error.is_none(),
                "{}/{} did not recover: {:?}",
                r.op,
                r.style,
                r.error
            );
        }
        assert!(
            rows.iter().any(|r| r.retransmissions > 0),
            "a 0.5% word fault rate must force at least one retransmission"
        );
    }

    #[test]
    fn fault_rows_ignore_the_seed_at_zero_rate() {
        let a = faults(&Machine::t3d(), 256, &FaultSettings::default());
        let b = faults(
            &Machine::t3d(),
            256,
            &FaultSettings {
                seed: 0xDEAD_BEEF,
                ..FaultSettings::default()
            },
        );
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.mbps, rb.mbps, "{}/{}", ra.op, ra.style);
            assert_eq!(ra.frames_sent, rb.frames_sent);
        }
    }
}
