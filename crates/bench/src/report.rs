//! Plain-text table rendering for the `repro` binary.

use std::fmt::Write as _;

/// A rendered text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Formats an MB/s figure.
    pub fn mbps(v: f64) -> String {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.1}")
        }
    }

    /// Formats an optional MB/s figure.
    pub fn opt_mbps(v: Option<f64>) -> String {
        v.map_or("-".to_string(), |v| format!("{v:.1}"))
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "123.4".into()]);
        let s = t.render();
        assert!(s.contains("### Demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(TextTable::mbps(12.34), "12.3");
        assert_eq!(TextTable::mbps(f64::NAN), "-");
        assert_eq!(TextTable::opt_mbps(None), "-");
        assert_eq!(TextTable::opt_mbps(Some(5.0)), "5.0");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_length_checked() {
        let mut t = TextTable::new("Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
