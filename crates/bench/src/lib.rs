//! # memcomm-bench — the reproduction harness
//!
//! One function per table and figure of the paper's evaluation. Each
//! returns machine-readable rows that the `repro` binary renders as the
//! same tables/series the paper prints; the benches under `benches/` wrap
//! the same functions. The [`runner`] module is the parallel, memoized
//! sweep engine tying them together: it fans points across workers, routes
//! every measurement through the process-wide cache, and splits its output
//! into a byte-deterministic report plus separate run metrics.
//!
//! | Function | Reproduces |
//! |---|---|
//! | [`experiments::figure1`] | Fig. 1 — PVM vs low-level library throughput vs message size |
//! | [`experiments::table1`] | Table 1 — local memory-to-memory copies |
//! | [`experiments::figure4`] | Fig. 4 — local copy throughput vs stride |
//! | [`experiments::table2`] / [`experiments::table3`] | Tables 2–3 — send / receive transfers |
//! | [`experiments::table4`] | Table 4 — network bandwidth vs congestion |
//! | [`experiments::section5`] | §5.1.1–5.1.4 + Figs. 7–8 — buffer packing vs chained |
//! | [`experiments::table5`] | Table 5 — strided loads vs strided stores |
//! | [`experiments::section341`] | §3.4.1 — the worked `1Q1024` example |
//! | [`experiments::table6`] | Table 6 — application kernels (+ PVM3 text figures) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod experiments;
pub mod perfsuite;
pub mod phases;
pub mod report;
pub mod runner;
