//! Deterministic perf-regression harness (`repro --bench-out`).
//!
//! Times the reproduction's hot paths — the full `--all` sweep (memo-cold
//! and memo-warm, serial and fanned out), the six Table 6 kernel × machine
//! engine runs, the retired heap scheduler on the saturated transpose (the
//! baseline the timing wheel is measured against), the same transpose with
//! the telemetry sampler armed (pinning sampling overhead; see
//! [`TELEMETRY_MAX_OVERHEAD`]), a protocol retry storm under a seeded
//! fault plan, and the adversarial-resilience group (the engine-level
//! retry storm under drops + link outages, and the faultless incast, at
//! every [`SCALE_NODES`] point) — and writes one canonical JSON report.
//!
//! The report separates two kinds of data with different contracts:
//!
//! * every bench's `deterministic` object holds values that must be
//!   byte-identical run to run and machine to machine at fixed
//!   [`PerfOptions`] — event digests, cycle counts, flit hops, peak queue
//!   depths, frame counts. A perf regression hunt can diff these against a
//!   golden file; any change is a correctness bug, not noise;
//! * the `timing` object holds wall-clock data — median-of-N milliseconds,
//!   simulated cycles per wall second, cache traffic (racy at `jobs > 1`),
//!   and the wheel-vs-heap speedup. [`normalize`] zeroes every number in
//!   it, so golden comparisons can pin the full report *structure* while
//!   ignoring the one thing that legitimately varies.
//!
//! [`validate`] checks a parsed report against the schema; the `benchcheck`
//! binary wraps it (and [`normalize`], under `--normalize`) for CI.

use std::time::Instant;

use memcomm_commops::{run_resilient_transfer, ProtocolConfig, Style};
use memcomm_kernels::netrun::{self, EngineOptions};
use memcomm_machines::{memo, Machine};
use memcomm_memsim::fault::{FaultConfig, FaultPlan};
use memcomm_memsim::{SimError, SimResult};
use memcomm_model::AccessPattern;
use memcomm_util::json::Json;

use crate::experiments::{EngineSettings, EXCHANGE_WORDS, MICRO_WORDS};
use crate::runner::{self, SweepOptions};

/// Version stamped into (and required of) every report.
pub const SCHEMA_VERSION: u64 = 1;
/// Suite name stamped into (and required of) every report.
pub const SUITE: &str = "memcomm-perfsuite";
/// The bench groups a report may contain.
pub const GROUPS: &[&str] = &[
    "sweep",
    "engine",
    "engine_baseline",
    "telemetry",
    "protocol",
    "scale",
    "adversary",
];

/// Telemetry sampling interval of the `telemetry` group's sampled run.
pub const TELEMETRY_SAMPLE_EVERY: u64 = 64;

/// The `telemetry` group's acceptance pin: sampled wall time over
/// unsampled on the saturated transpose, enforced at full scale.
pub const TELEMETRY_MAX_OVERHEAD: f64 = 1.10;

/// Node counts of the `scale` group: how fast the sharded engine simulates
/// as the torus grows from the paper's 64 nodes to a kilo-node machine.
pub const SCALE_NODES: &[usize] = &[64, 256, 1024];

/// Workload knobs of a perfsuite run. The defaults are the acceptance
/// configuration (64 simulated nodes, the paper's kernel instances,
/// median of 3); [`PerfOptions::smoke`] is the CI preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfOptions {
    /// Repetitions per bench (wall times report median/min/max of these).
    pub reps: usize,
    /// Simulated engine node count (power of two).
    pub nodes: usize,
    /// Microbenchmark payload words for the sweep benches.
    pub micro_words: u64,
    /// Exchange payload words for the sweep and protocol benches.
    pub exchange_words: u64,
    /// Transpose matrix dimension for the engine benches.
    pub transpose_n: u64,
    /// SOR halo row words for the engine benches.
    pub sor_n: u64,
    /// Words per pair and per round in the `scale` group's truncated
    /// transpose (the [`SCALE_NODES`] sweep).
    pub scale_words: u64,
    /// XOR-schedule prefix length for the `scale` group.
    pub scale_rounds: u64,
    /// Base flow payload, in bytes, for the `adversary` group's generators
    /// (elephants and bursts scale it up; see
    /// [`memcomm_netsim::adversary::AdversaryConfig::base_bytes`]).
    pub adversary_bytes: u64,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            reps: 3,
            nodes: 64,
            micro_words: MICRO_WORDS,
            exchange_words: EXCHANGE_WORDS,
            transpose_n: 1024,
            sor_n: 256,
            scale_words: 32,
            scale_rounds: 4,
            adversary_bytes: 256,
        }
    }
}

impl PerfOptions {
    /// The CI smoke preset: one rep, 4 nodes, shrunken payloads — seconds,
    /// not minutes, while exercising every bench and schema path.
    pub fn smoke() -> Self {
        PerfOptions {
            reps: 1,
            nodes: 4,
            micro_words: 1024,
            exchange_words: 512,
            transpose_n: 64,
            sor_n: 64,
            scale_words: 4,
            scale_rounds: 3,
            adversary_bytes: 64,
        }
    }
}

/// 64-bit FNV-1a — the digest the report uses to pin sweep-report bytes.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` `reps` times, returning the last result and per-rep wall ms.
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Vec<f64>) {
    let reps = reps.max(1);
    let mut walls = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        out = Some(f());
        walls.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (out.expect("reps >= 1"), walls)
}

fn median(walls: &[f64]) -> f64 {
    let mut sorted = walls.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The mandatory prefix of every `timing` object, plus bench-specific
/// extras. `sim_cycles` (when known) prices the median wall time in
/// simulated cycles per wall second.
fn timing_obj(walls: &[f64], sim_cycles: Option<u64>, extra: Vec<(&'static str, Json)>) -> Json {
    let med = median(walls);
    let min = walls.iter().copied().fold(f64::INFINITY, f64::min);
    let max = walls.iter().copied().fold(0.0f64, f64::max);
    let mut pairs = vec![
        ("wall_ms_median", Json::Num(med)),
        ("wall_ms_min", Json::Num(min)),
        ("wall_ms_max", Json::Num(max)),
    ];
    if let Some(c) = sim_cycles {
        pairs.push((
            "sim_cycles_per_sec",
            Json::Num(c as f64 / (med / 1e3).max(1e-12)),
        ));
    }
    pairs.extend(extra);
    Json::obj(pairs)
}

fn bench_obj(name: &str, group: &str, deterministic: Json, timing: Json) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("group", Json::str(group)),
        ("deterministic", deterministic),
        ("timing", timing),
    ])
}

fn hex16(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

/// The full `--all` sweep at a fixed worker count: one timed run, plus the
/// FNV of the rendered report (the byte-determinism anchor) and the cache
/// traffic of the *last* rep (racy at `jobs > 1`, hence a timing field).
fn sweep_bench(opts: &PerfOptions, jobs: usize, cold: bool, benches: &mut Vec<Json>) -> u64 {
    let name = format!(
        "sweep_all_jobs{jobs}_{}",
        if cold { "cold" } else { "warm" }
    );
    eprintln!("perfsuite: {name} ({} reps)", opts.reps.max(1));
    let sweep = SweepOptions {
        jobs,
        micro_words: opts.micro_words,
        exchange_words: opts.exchange_words,
        ..SweepOptions::default()
    };
    let (last, walls) = timed(opts.reps, || {
        if cold {
            memo::reset();
        }
        runner::run_sweep(&sweep)
    });
    let (report, metrics) = last;
    let fnv = fnv64(report.to_json().render().as_bytes());
    benches.push(bench_obj(
        &name,
        "sweep",
        Json::obj([
            ("report_fnv", hex16(fnv)),
            ("points", metrics.points.into()),
        ]),
        timing_obj(
            &walls,
            Some(metrics.sim.cycles),
            vec![
                ("cache_hits", metrics.cache.hits.into()),
                ("cache_misses", metrics.cache.misses.into()),
            ],
        ),
    ));
    fnv
}

/// One engine execution of a Table 6 kernel on a machine's scaled topology.
fn engine_bench(
    opts: &PerfOptions,
    machine: &Machine,
    short: &str,
    kernel: &netrun::Table6Kernel,
    reference: bool,
    benches: &mut Vec<Json>,
) -> SimResult<(f64, netrun::EngineRun)> {
    let name = format!(
        "engine_{}_{short}{}",
        kernel.name().to_lowercase(),
        if reference { "_heap" } else { "" }
    );
    eprintln!("perfsuite: {name} ({} reps)", opts.reps.max(1));
    let topo = netrun::engine_topology(machine, Some(opts.nodes))?;
    let rounds = kernel.rounds(&topo)?;
    let eopts = EngineOptions {
        nodes: Some(opts.nodes),
        jobs: 1,
        shards: 0,
        record_events: false,
        sample_every: 0,
        reference_scheduler: reference,
    };
    let (last, walls) = timed(opts.reps, || {
        netrun::run_rounds(machine, &topo, &rounds, &eopts)
    });
    let run = last?;
    benches.push(bench_obj(
        &name,
        if reference {
            "engine_baseline"
        } else {
            "engine"
        },
        Json::obj([
            ("cycles", run.cycles.into()),
            ("words", run.words.into()),
            ("flit_hops", run.flit_hops.into()),
            ("windows", run.windows.into()),
            ("peak_queue_depth", run.peak_queue_depth.into()),
            ("digest", hex16(run.digest)),
        ]),
        timing_obj(&walls, Some(run.cycles), Vec::new()),
    ));
    Ok((median(&walls), run))
}

/// One point of the scale sweep: a truncated XOR transpose on the T3D
/// torus scaled to `nodes`, run with the process-wide worker count and
/// auto sharding — the configuration whose simulated-cycles-per-second is
/// the engine's scaling headline. The payload is deliberately a prefix of
/// the full schedule: enough words per pair that steady-state contention
/// dominates, few enough rounds that the kilo-node point stays in a CI
/// budget.
fn scale_bench(opts: &PerfOptions, nodes: usize, benches: &mut Vec<Json>) -> SimResult<()> {
    let name = format!("engine_scale_{nodes}");
    eprintln!("perfsuite: {name} ({} reps)", opts.reps.max(1));
    let machine = Machine::t3d();
    let topo = netrun::engine_topology(&machine, Some(nodes))?;
    let mut rounds = memcomm_netsim::traffic::aapc_xor_schedule(nodes, opts.scale_words * 8);
    rounds.truncate(opts.scale_rounds.max(1) as usize);
    let eopts = EngineOptions {
        nodes: Some(nodes),
        jobs: 0,
        shards: 0,
        record_events: false,
        sample_every: 0,
        reference_scheduler: false,
    };
    let (last, walls) = timed(opts.reps, || {
        netrun::run_rounds(&machine, &topo, &rounds, &eopts)
    });
    let run = last?;
    benches.push(bench_obj(
        &name,
        "scale",
        Json::obj([
            ("nodes", (nodes as u64).into()),
            ("cycles", run.cycles.into()),
            ("words", run.words.into()),
            ("flit_hops", run.flit_hops.into()),
            ("windows", run.windows.into()),
            ("peak_queue_depth", run.peak_queue_depth.into()),
            ("digest", hex16(run.digest)),
        ]),
        timing_obj(&walls, Some(run.cycles), Vec::new()),
    ));
    Ok(())
}

/// Telemetry overhead: the saturated T3D transpose re-run with the
/// engine's sampler armed every [`TELEMETRY_SAMPLE_EVERY`] cycles,
/// priced against the unsampled run (`wheel_ms`). Sampling must change
/// nothing — the deterministic object pins the sampled run's full ledger,
/// and `run` hard-fails if it diverges from the unsampled outcome — so
/// the only legitimate difference is wall time, recorded in the timing
/// object as `overhead`. Full-scale runs (the default preset) enforce
/// the acceptance pin `overhead <=` [`TELEMETRY_MAX_OVERHEAD`]; the
/// smoke preset records the ratio without failing, because
/// sub-millisecond runs are all timer noise.
fn telemetry_bench(
    opts: &PerfOptions,
    kernel: &netrun::Table6Kernel,
    wheel_ms: f64,
    wheel_run: &netrun::EngineRun,
    benches: &mut Vec<Json>,
) -> SimResult<()> {
    let name = "engine_transpose_t3d_sampled";
    eprintln!("perfsuite: {name} ({} reps)", opts.reps.max(1));
    let machine = Machine::t3d();
    let topo = netrun::engine_topology(&machine, Some(opts.nodes))?;
    let rounds = kernel.rounds(&topo)?;
    let eopts = EngineOptions {
        nodes: Some(opts.nodes),
        jobs: 1,
        shards: 0,
        record_events: false,
        sample_every: TELEMETRY_SAMPLE_EVERY,
        reference_scheduler: false,
    };
    let (last, walls) = timed(opts.reps, || {
        netrun::run_rounds(&machine, &topo, &rounds, &eopts)
    });
    let run = last?;
    if run != *wheel_run {
        return Err(SimError::Protocol {
            detail: "telemetry sampling perturbed the transpose outcome".to_string(),
            at: 0,
        });
    }
    let overhead = median(&walls) / wheel_ms.max(1e-12);
    benches.push(bench_obj(
        name,
        "telemetry",
        Json::obj([
            ("sample_every", TELEMETRY_SAMPLE_EVERY.into()),
            ("cycles", run.cycles.into()),
            ("words", run.words.into()),
            ("flit_hops", run.flit_hops.into()),
            ("windows", run.windows.into()),
            ("peak_queue_depth", run.peak_queue_depth.into()),
            ("digest", hex16(run.digest)),
        ]),
        timing_obj(
            &walls,
            Some(run.cycles),
            vec![("overhead", Json::Num(overhead))],
        ),
    ));
    if opts.reps >= 3 && opts.nodes >= 64 && overhead > TELEMETRY_MAX_OVERHEAD {
        return Err(SimError::Protocol {
            detail: format!(
                "telemetry sampling overhead {overhead:.3} exceeds the \
                 {TELEMETRY_MAX_OVERHEAD} acceptance pin"
            ),
            at: 0,
        });
    }
    Ok(())
}

/// The resilient-transfer retry storm: a seeded fault plan drops enough
/// link words that the stop-and-wait protocol spends its time in timeouts,
/// backoff and retransmissions — the protocol hot path under stress.
fn protocol_bench(opts: &PerfOptions, benches: &mut Vec<Json>) -> SimResult<()> {
    eprintln!(
        "perfsuite: protocol_retry_storm ({} reps)",
        opts.reps.max(1)
    );
    let cfg = ProtocolConfig {
        words: opts.exchange_words,
        ..ProtocolConfig::default()
    };
    let plan = FaultPlan::new(FaultConfig {
        seed: 0xB5_57_02,
        rate: 0.004,
        ..FaultConfig::default()
    });
    let machine = Machine::t3d();
    let (last, walls) = timed(opts.reps, || {
        run_resilient_transfer(
            &machine,
            AccessPattern::Contiguous,
            AccessPattern::Contiguous,
            Style::Chained,
            plan,
            &cfg,
        )
    });
    let report = last?;
    benches.push(bench_obj(
        "protocol_retry_storm",
        "protocol",
        Json::obj([
            ("words", report.words.into()),
            ("frames_sent", report.frames_sent.into()),
            ("retransmissions", report.retransmissions.into()),
            ("end_cycle", report.end_cycle.into()),
            ("verified", report.verified.into()),
            ("degraded", report.degraded.into()),
        ]),
        timing_obj(&walls, Some(report.end_cycle), Vec::new()),
    ));
    Ok(())
}

/// One adversarial-resilience point: a seeded generator pattern on the
/// T3D torus scaled to `nodes`, run end to end through the engine. The
/// retry storm goes under a genuine fault storm — word drops plus
/// transient link-outage windows — on a tight retry budget; the incast is
/// faultless, so its tail latency is pure fan-in queueing. The
/// deterministic object pins the full resilience ledger (drops,
/// retransmissions, abandonments, missing words, the event digest) and
/// the adversarial class's p50/p99/p999 inject→eject latency.
fn adversary_bench(
    opts: &PerfOptions,
    kind: memcomm_netsim::AdversaryKind,
    nodes: usize,
    benches: &mut Vec<Json>,
) -> SimResult<()> {
    use memcomm_netsim::engine::RetryPolicy;
    use memcomm_netsim::{AdversaryConfig, AdversaryKind};

    let name = format!("adversary_{}_{nodes}", kind.name().replace('-', "_"));
    eprintln!("perfsuite: {name} ({} reps)", opts.reps.max(1));
    let machine = Machine::t3d();
    let adv = AdversaryConfig {
        kind,
        base_bytes: opts.adversary_bytes,
        ..AdversaryConfig::default()
    };
    let (plan, retry) = if kind == AdversaryKind::RetryStorm {
        (
            FaultPlan::new(FaultConfig {
                seed: 0xAD_0BE5,
                rate: 0.02,
                outage_window_rate: 0.2,
                outage_window_cycles: 512,
                outage_period_cycles: 1 << 12,
                ..FaultConfig::default()
            }),
            RetryPolicy {
                max_retries: 4,
                backoff_base_cycles: 16,
                backoff_factor: 2,
                max_backoff_cycles: 1 << 10,
            },
        )
    } else {
        (FaultPlan::default(), RetryPolicy::default())
    };
    let eopts = EngineOptions {
        nodes: Some(nodes),
        jobs: 0,
        shards: 0,
        record_events: false,
        sample_every: 0,
        reference_scheduler: false,
    };
    let (last, walls) = timed(opts.reps, || {
        netrun::run_adversary(&machine, &adv, plan, retry, &eopts)
    });
    let run = last?;
    let out = &run.outcome;
    let missing: u64 = out
        .degraded
        .as_ref()
        .map_or(0, |d| d.missing_flows.iter().map(|&(_, w)| w).sum());
    let tail = out.flow_latency.get(1).or_else(|| out.flow_latency.first());
    let (lat_count, lat_p50, lat_p99, lat_p999) =
        tail.map_or((0, 0, 0, 0), |t| (t.count, t.p50, t.p99, t.p999));
    benches.push(bench_obj(
        &name,
        "adversary",
        Json::obj([
            ("nodes", (nodes as u64).into()),
            ("flows", run.flows.into()),
            ("words", out.words.into()),
            ("cycles", out.cycles.into()),
            ("dropped", out.dropped.into()),
            ("retried", out.retried.into()),
            ("abandoned", out.abandoned.into()),
            ("missing_words", missing.into()),
            ("degraded", out.degraded.is_some().into()),
            ("lat_count", lat_count.into()),
            ("lat_p50", lat_p50.into()),
            ("lat_p99", lat_p99.into()),
            ("lat_p999", lat_p999.into()),
            ("digest", hex16(out.digest)),
        ]),
        timing_obj(&walls, Some(out.cycles), Vec::new()),
    ));
    Ok(())
}

/// Runs the whole suite and returns the canonical report.
///
/// As a side effect this run *is* a determinism check: the serial and
/// fanned-out sweeps must render byte-identical reports, and the heap
/// baseline must reproduce the wheel scheduler's outcome exactly.
///
/// # Errors
///
/// Propagates engine and protocol failures, and surfaces a determinism
/// violation (serial vs parallel sweep, wheel vs heap) as
/// [`SimError::Protocol`].
pub fn run(opts: &PerfOptions) -> SimResult<Json> {
    let mut benches = Vec::new();

    // Sweeps: cold first (each rep resets the memo cache), then warm on
    // the cache the cold rep left behind.
    let mut fnvs = Vec::new();
    for jobs in [1usize, 4] {
        fnvs.push(sweep_bench(opts, jobs, true, &mut benches));
        fnvs.push(sweep_bench(opts, jobs, false, &mut benches));
    }
    if fnvs.iter().any(|&f| f != fnvs[0]) {
        return Err(SimError::Protocol {
            detail: "sweep reports diverged across worker counts".to_string(),
            at: 0,
        });
    }

    // The six Table 6 kernel × machine pairs on the production scheduler,
    // then the saturated transpose again on the retired heap baseline.
    let settings = EngineSettings {
        nodes: opts.nodes,
        transpose_n: opts.transpose_n,
        sor_n: opts.sor_n,
        jobs: 1,
        shards: 0,
    };
    let mut transpose_t3d: Option<(f64, netrun::EngineRun)> = None;
    for (machine, short) in [(Machine::t3d(), "t3d"), (Machine::paragon(), "paragon")] {
        for kernel in crate::experiments::engine_kernels(&settings) {
            let out = engine_bench(opts, &machine, short, &kernel, false, &mut benches)?;
            if short == "t3d" && kernel.name() == "Transpose" {
                transpose_t3d = Some(out);
            }
        }
    }
    let (wheel_ms, wheel_run) = transpose_t3d.expect("the transpose ran on the T3D");
    let kernel = crate::experiments::engine_kernels(&settings)
        .into_iter()
        .find(|k| k.name() == "Transpose")
        .expect("the kernel set contains the transpose");
    let (heap_ms, heap_run) =
        engine_bench(opts, &Machine::t3d(), "t3d", &kernel, true, &mut benches)?;
    if heap_run != wheel_run {
        return Err(SimError::Protocol {
            detail: "heap baseline diverged from the wheel scheduler".to_string(),
            at: 0,
        });
    }
    // The acceptance statistic: production sim-cycles/sec over the heap
    // baseline's, recorded on the baseline bench (timing — it is a ratio
    // of wall times).
    let speedup = heap_ms / wheel_ms.max(1e-12);
    if let Some(Json::Obj(bench)) = benches.last_mut() {
        if let Some((_, Json::Obj(timing))) = bench.iter_mut().find(|(k, _)| k == "timing") {
            timing.push(("speedup".to_string(), Json::Num(speedup)));
        }
    }

    // Telemetry overhead on the same saturated transpose: sampling must
    // reproduce the wheel run's exact ledger and stay within the wall-time
    // pin.
    telemetry_bench(opts, &kernel, wheel_ms, &wheel_run, &mut benches)?;

    // The scale sweep: sim-cycles/sec as the torus grows to 1024 nodes.
    for &nodes in SCALE_NODES {
        scale_bench(opts, nodes, &mut benches)?;
    }

    protocol_bench(opts, &mut benches)?;

    // Adversarial resilience: the end-to-end retry storm (drops + outage
    // windows + bounded retries) and the faultless incast, at every scale
    // point.
    for kind in [
        memcomm_netsim::AdversaryKind::RetryStorm,
        memcomm_netsim::AdversaryKind::Incast,
    ] {
        for &nodes in SCALE_NODES {
            adversary_bench(opts, kind, nodes, &mut benches)?;
        }
    }

    Ok(Json::obj([
        ("schema_version", SCHEMA_VERSION.into()),
        ("suite", Json::str(SUITE)),
        (
            "options",
            Json::obj([
                ("reps", (opts.reps as u64).into()),
                ("nodes", (opts.nodes as u64).into()),
                ("micro_words", opts.micro_words.into()),
                ("exchange_words", opts.exchange_words.into()),
                ("transpose_n", opts.transpose_n.into()),
                ("sor_n", opts.sor_n.into()),
                ("scale_words", opts.scale_words.into()),
                ("scale_rounds", opts.scale_rounds.into()),
                ("adversary_bytes", opts.adversary_bytes.into()),
            ]),
        ),
        ("benches", Json::Arr(benches)),
    ]))
}

fn obj_keys(v: &Json) -> Option<Vec<&str>> {
    match v {
        Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
        _ => None,
    }
}

fn is_hex16(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Validates a parsed report against the canonical schema: exact top-level
/// and per-bench key sets, known groups, unique snake_case names, 16-digit
/// lowercase hex digests, and finite non-negative timing numbers with
/// `min <= median <= max`. Normalized reports (all timing numbers zeroed)
/// validate too — CI runs the check on both.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate(doc: &Json) -> Result<(), String> {
    if obj_keys(doc) != Some(vec!["schema_version", "suite", "options", "benches"]) {
        return Err("top level must be {schema_version, suite, options, benches}".to_string());
    }
    if doc.get("schema_version") != Some(&Json::Int(SCHEMA_VERSION as i64)) {
        return Err(format!("schema_version must be {SCHEMA_VERSION}"));
    }
    if doc.get("suite").and_then(Json::as_str) != Some(SUITE) {
        return Err(format!("suite must be {SUITE:?}"));
    }
    let options = doc.get("options").ok_or("options missing")?;
    let want = vec![
        "reps",
        "nodes",
        "micro_words",
        "exchange_words",
        "transpose_n",
        "sor_n",
        "scale_words",
        "scale_rounds",
        "adversary_bytes",
    ];
    if obj_keys(options) != Some(want.clone()) {
        return Err(format!("options must be an object with keys {want:?}"));
    }
    for key in want {
        match options.get(key) {
            Some(Json::Int(n)) if *n >= 0 => {}
            _ => return Err(format!("options.{key} must be a non-negative integer")),
        }
    }
    let benches = doc
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("benches must be an array")?;
    if benches.is_empty() {
        return Err("benches must not be empty".to_string());
    }
    let mut seen = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        let at = |msg: &str| format!("bench {i}: {msg}");
        if obj_keys(b) != Some(vec!["name", "group", "deterministic", "timing"]) {
            return Err(at("must be {name, group, deterministic, timing}"));
        }
        let name = b.get("name").and_then(Json::as_str).ok_or(at("bad name"))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
        {
            return Err(at(&format!("name {name:?} must be snake_case ascii")));
        }
        if seen.contains(&name) {
            return Err(at(&format!("duplicate name {name:?}")));
        }
        seen.push(name);
        let group = b
            .get("group")
            .and_then(Json::as_str)
            .ok_or(at("bad group"))?;
        if !GROUPS.contains(&group) {
            return Err(at(&format!(
                "unknown group {group:?} (want one of {GROUPS:?})"
            )));
        }
        let det = b.get("deterministic").ok_or(at("deterministic missing"))?;
        let Json::Obj(pairs) = det else {
            return Err(at("deterministic must be an object"));
        };
        for (k, v) in pairs {
            match v {
                Json::Int(n) if *n >= 0 => {}
                Json::Bool(_) => {}
                Json::Str(s) if (k.ends_with("digest") || k.ends_with("fnv")) && is_hex16(s) => {}
                _ => {
                    return Err(at(&format!(
                        "deterministic.{k} must be a non-negative integer, bool, \
                         or (for digests) 16 lowercase hex digits"
                    )))
                }
            }
        }
        let timing = b.get("timing").ok_or(at("timing missing"))?;
        let Json::Obj(pairs) = timing else {
            return Err(at("timing must be an object"));
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        if keys.len() < 3 || keys[..3] != ["wall_ms_median", "wall_ms_min", "wall_ms_max"] {
            return Err(at(
                "timing must start with wall_ms_median, wall_ms_min, wall_ms_max",
            ));
        }
        let mut wall = [0.0f64; 3];
        for (k, v) in pairs {
            let Some(n) = v.as_f64() else {
                return Err(at(&format!("timing.{k} must be a number")));
            };
            if !n.is_finite() || n < 0.0 {
                return Err(at(&format!("timing.{k} must be finite and non-negative")));
            }
            match k.as_str() {
                "wall_ms_median" => wall[0] = n,
                "wall_ms_min" => wall[1] = n,
                "wall_ms_max" => wall[2] = n,
                _ => {}
            }
        }
        if !(wall[1] <= wall[0] && wall[0] <= wall[2]) {
            return Err(at("wall times must satisfy min <= median <= max"));
        }
    }
    Ok(())
}

/// The report with every number in every bench's `timing` object replaced
/// by `0` — deterministic bytes suitable for golden-file comparison.
pub fn normalize(doc: &Json) -> Json {
    let mut out = doc.clone();
    let Json::Obj(top) = &mut out else {
        return out;
    };
    let Some((_, Json::Arr(benches))) = top.iter_mut().find(|(k, _)| k == "benches") else {
        return out;
    };
    for b in benches {
        let Json::Obj(pairs) = b else { continue };
        let Some((_, Json::Obj(timing))) = pairs.iter_mut().find(|(k, _)| k == "timing") else {
            continue;
        };
        for (_, v) in timing {
            if matches!(v, Json::Int(_) | Json::Num(_)) {
                *v = Json::Int(0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke preset end to end: runs, validates, and its normalized
    /// rendering is byte-stable across two runs (the golden-bench tier pins
    /// the exact bytes in a separate process).
    #[test]
    fn smoke_suite_runs_validates_and_normalizes_deterministically() {
        let opts = PerfOptions::smoke();
        let a = run(&opts).expect("suite runs");
        validate(&a).expect("report validates");
        let b = run(&opts).expect("suite reruns");
        assert_eq!(
            normalize(&a).render(),
            normalize(&b).render(),
            "normalized reports must be byte-stable"
        );
        let na = normalize(&a);
        validate(&na).expect("normalized report validates too");
        assert_ne!(a.render(), na.render(), "normalization zeroes wall times");
    }

    #[test]
    fn validate_rejects_malformed_reports() {
        let ok = run(&PerfOptions::smoke()).expect("suite runs");
        assert!(validate(&Json::Null).is_err());
        // Wrong suite name.
        let mut bad = ok.clone();
        if let Json::Obj(pairs) = &mut bad {
            pairs[1].1 = Json::str("not-the-suite");
        }
        assert!(validate(&bad).unwrap_err().contains("suite"));
        // A corrupted digest.
        let mut bad = ok.clone();
        if let Json::Obj(pairs) = &mut bad {
            if let Some((_, Json::Arr(benches))) = pairs.iter_mut().find(|(k, _)| k == "benches") {
                if let Json::Obj(bench) = &mut benches[0] {
                    if let Some((_, Json::Obj(det))) =
                        bench.iter_mut().find(|(k, _)| k == "deterministic")
                    {
                        det[0].1 = Json::str("XYZ");
                    }
                }
            }
        }
        assert!(validate(&bad).is_err());
        // A negative wall time.
        let mut bad = ok;
        if let Json::Obj(pairs) = &mut bad {
            if let Some((_, Json::Arr(benches))) = pairs.iter_mut().find(|(k, _)| k == "benches") {
                if let Json::Obj(bench) = &mut benches[0] {
                    if let Some((_, Json::Obj(t))) = bench.iter_mut().find(|(k, _)| k == "timing") {
                        t[0].1 = Json::Num(-1.0);
                    }
                }
            }
        }
        assert!(validate(&bad).unwrap_err().contains("non-negative"));
    }

    #[test]
    fn hex16_accepts_digests_and_rejects_noise() {
        assert!(is_hex16("00deadbeef001122"));
        assert!(!is_hex16("00DEADBEEF001122"));
        assert!(!is_hex16("abc"));
        assert!(!is_hex16("zz00000000000000"));
    }
}
