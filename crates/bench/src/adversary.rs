//! The `repro --adversary` resilience scenario: a seeded adversarial
//! traffic generator compiled onto the (optionally scaled) T3D torus and
//! run end to end through the event engine under a fault storm — word
//! drops plus transient link-outage windows — with bounded per-hop
//! retries and exponential backoff.
//!
//! The scenario's results are byte-deterministic at any worker × shard
//! count: [`scenario_json`] renders the full resilience ledger (drops,
//! retransmissions, abandonments, degraded accounting, per-class
//! inject→eject latency quantiles) with no wall-clock data, so a golden
//! file can pin it exactly (`tests/golden/adversary.json` does).

use memcomm_kernels::netrun::{self, AdversaryRun, EngineOptions};
use memcomm_machines::Machine;
use memcomm_memsim::fault::{FaultConfig, FaultPlan};
use memcomm_memsim::SimResult;
use memcomm_netsim::adversary::CLASS_NAMES;
use memcomm_netsim::engine::RetryPolicy;
use memcomm_netsim::{AdversaryConfig, AdversaryKind};
use memcomm_util::json::Json;

/// What to run: the generator, its scale, and the storm around it. The
/// [`ScenarioOptions::new`] defaults are the acceptance configuration —
/// a 2% drop rate with transient link outages, a retry budget of 4 with
/// exponential backoff — and every field maps to a `repro` flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioOptions {
    /// Traffic pattern to compile.
    pub kind: AdversaryKind,
    /// Generator base payload, in bytes (`--adversary-bytes`).
    pub base_bytes: u64,
    /// Scaled node count (`--nodes`; `None` = the machine's own).
    pub nodes: Option<usize>,
    /// Engine shard count (`--shards`; 0 = auto). Never changes results.
    pub shards: usize,
    /// Worker threads (`--jobs`; 0 = process-wide). Never changes results.
    pub jobs: usize,
    /// Fault-plan seed (`--faults SEED`).
    pub seed: u64,
    /// Word-drop probability (`--fault-rate`; 0 disables the whole storm,
    /// including outage windows).
    pub rate: f64,
    /// Telemetry sampling interval in cycles (`--sample-every`; 0 = off).
    /// Never changes results — sampling only adds a `telemetry` section to
    /// the report.
    pub sample_every: u64,
}

impl ScenarioOptions {
    /// The default storm around `kind`: seed `0xAD0BE5`, 2% drops with
    /// transient link outages, 256-byte base payloads, auto fan-out.
    pub fn new(kind: AdversaryKind) -> Self {
        ScenarioOptions {
            kind,
            base_bytes: 256,
            nodes: None,
            shards: 0,
            jobs: 0,
            seed: 0xAD_0BE5,
            rate: 0.02,
            sample_every: 0,
        }
    }

    /// The fault plan the scenario runs under: word drops at [`rate`]
    /// plus transient link-outage windows whenever drops are enabled at
    /// all (a zero rate turns the whole plan off, making the run a
    /// faultless tail-latency measurement).
    ///
    /// [`rate`]: ScenarioOptions::rate
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: self.seed,
            rate: self.rate,
            outage_window_rate: if self.rate > 0.0 { 0.2 } else { 0.0 },
            outage_window_cycles: 512,
            outage_period_cycles: 1 << 12,
            ..FaultConfig::default()
        })
    }

    /// The retry policy the scenario runs under: a budget of 4 per-hop
    /// retransmissions with exponential backoff `16 << attempt`, capped
    /// at 1024 cycles.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            backoff_base_cycles: 16,
            backoff_factor: 2,
            max_backoff_cycles: 1 << 10,
        }
    }
}

/// A completed scenario: the resolved node count plus the engine run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Nodes the topology actually has after scaling.
    pub nodes: usize,
    /// The scaled torus the scenario ran on (heatmaps render over it).
    pub topo: memcomm_netsim::Topology,
    /// The compiled flow count and engine outcome.
    pub run: AdversaryRun,
}

/// Runs the scenario on the T3D.
///
/// # Errors
///
/// Propagates topology-scaling and engine failures. A run the storm
/// wedges is *not* an error: the outcome carries
/// [`Degraded`](memcomm_netsim::engine::Degraded) accounting instead.
pub fn run_scenario(opts: &ScenarioOptions) -> SimResult<Scenario> {
    let machine = Machine::t3d();
    let adv = AdversaryConfig {
        kind: opts.kind,
        base_bytes: opts.base_bytes,
        ..AdversaryConfig::default()
    };
    let eopts = EngineOptions {
        nodes: opts.nodes,
        jobs: opts.jobs,
        shards: opts.shards,
        record_events: false,
        sample_every: opts.sample_every,
        reference_scheduler: false,
    };
    let topo = netrun::engine_topology(&machine, opts.nodes)?;
    let nodes = topo.len();
    let run = netrun::run_adversary(
        &machine,
        &adv,
        opts.fault_plan(),
        opts.retry_policy(),
        &eopts,
    )?;
    Ok(Scenario { nodes, topo, run })
}

/// Human name of latency class `i` (see [`CLASS_NAMES`]).
pub fn class_name(i: usize) -> String {
    CLASS_NAMES
        .get(i)
        .map_or_else(|| format!("class{i}"), |n| (*n).to_string())
}

/// Renders the scenario's machine-readable report. Byte-deterministic at
/// any jobs × shards: only simulation results, never wall-clock data.
/// With sampling off the bytes are identical to pre-telemetry reports;
/// with sampling on a trailing `telemetry` section is appended.
pub fn scenario_json(opts: &ScenarioOptions, s: &Scenario) -> Json {
    let out = &s.run.outcome;
    let mut pairs = vec![
        ("kind", Json::str(opts.kind.name())),
        ("nodes", (s.nodes as u64).into()),
        ("seed", opts.seed.into()),
        ("rate", opts.rate.into()),
        ("base_bytes", opts.base_bytes.into()),
        ("flows", s.run.flows.into()),
        ("words", out.words.into()),
        ("cycles", out.cycles.into()),
        ("flit_hops", out.flit_hops.into()),
        ("dropped", out.dropped.into()),
        ("retried", out.retried.into()),
        ("abandoned", out.abandoned.into()),
        ("digest", Json::Str(format!("{:016x}", out.digest))),
        (
            "degraded",
            out.degraded.as_ref().map_or(Json::Null, |d| {
                Json::obj([
                    (
                        "missing_words",
                        d.missing_flows.iter().map(|&(_, w)| w).sum::<u64>().into(),
                    ),
                    ("missing_flows", (d.missing_flows.len() as u64).into()),
                    ("last_progress_cycle", d.last_progress_cycle.into()),
                    ("outaged_links", (d.per_link_outages.len() as u64).into()),
                ])
            }),
        ),
        (
            "flow_latency",
            Json::arr(
                &out.flow_latency.iter().enumerate().collect::<Vec<_>>(),
                |(i, h)| {
                    Json::obj([
                        ("class", Json::Str(class_name(*i))),
                        ("count", h.count.into()),
                        ("p50", h.p50.into()),
                        ("p99", h.p99.into()),
                        ("p999", h.p999.into()),
                        ("max", h.max.into()),
                    ])
                },
            ),
        ),
    ];
    if let Some(tel) = &out.telemetry {
        pairs.push((
            "telemetry",
            Json::obj([
                ("sample_every", tel.sample_every.into()),
                ("ticks", tel.ticks.into()),
                (
                    "queue_depth_peak",
                    tel.queue_depth.peak().map_or(0, |(_, v)| v).into(),
                ),
                ("link_busy_total", tel.link_busy.total().into()),
                ("retries_total", tel.retries.total().into()),
                ("outages_total", tel.outages.total().into()),
                (
                    "breakdown",
                    Json::arr(
                        &tel.breakdown.iter().enumerate().collect::<Vec<_>>(),
                        |(i, b)| {
                            Json::obj([
                                ("class", Json::Str(class_name(*i))),
                                ("count", b.count.into()),
                                ("inject", b.inject.into()),
                                ("queue", b.queue.into()),
                                ("wire", b.wire.into()),
                                ("backoff", b.backoff.into()),
                                ("total", b.total.into()),
                            ])
                        },
                    ),
                ),
            ]),
        ));
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_json_is_partition_invariant() {
        let base = ScenarioOptions {
            nodes: Some(16),
            base_bytes: 64,
            ..ScenarioOptions::new(AdversaryKind::RetryStorm)
        };
        let reference = run_scenario(&base).expect("scenario runs");
        let want = scenario_json(&base, &reference).render();
        assert!(reference.run.outcome.dropped > 0, "the storm must bite");
        for (jobs, shards) in [(1, 1), (4, 3), (2, 0)] {
            let opts = ScenarioOptions {
                jobs,
                shards,
                ..base
            };
            let got = run_scenario(&opts).expect("scenario runs");
            assert_eq!(
                scenario_json(&opts, &got).render(),
                want,
                "jobs {jobs} x shards {shards} changed the scenario bytes"
            );
        }
    }

    #[test]
    fn a_zero_rate_scenario_is_faultless() {
        let opts = ScenarioOptions {
            nodes: Some(16),
            base_bytes: 64,
            rate: 0.0,
            ..ScenarioOptions::new(AdversaryKind::Incast)
        };
        let s = run_scenario(&opts).expect("scenario runs");
        let out = &s.run.outcome;
        assert_eq!(out.dropped, 0);
        assert_eq!(out.retried, 0);
        assert!(out.degraded.is_none());
        assert!(out.flow_latency.iter().any(|h| h.count > 0));
    }
}
