//! Per-stage phase attribution: measured stage split vs the model's
//! predicted split.
//!
//! A composed transfer `xQy` moves through up to five stages — `pack`,
//! `send`, `wire`, `deposit`, `unpack`. The simulator records the cycle at
//! which each stage drains ([`PhaseTimeline`]); the copy-transfer model
//! predicts each stage's cost from the calibrated [`RateTable`]. This module
//! runs both and reports the attribution error between the two splits,
//! turning "the model is accurate end to end" into "the model is accurate
//! *stage by stage*".

use memcomm_commops::{run_exchange, PhaseTimeline, Style};
use memcomm_machines::Machine;
use memcomm_memsim::{Cycle, SimResult};
use memcomm_model::{AccessPattern, BasicTransfer, RateTable};

use crate::experiments::{paper_exchange_cfg, parse_q};

/// The operations whose stage split we attribute (covers both pattern axes
/// and the indexed `ω` extreme).
pub const PHASE_OPS: [&str; 5] = ["1Q1", "1Q64", "64Q1", "1Qw", "wQ1"];

/// One measured-vs-predicted stage split for a single `(op, style)` point.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Operation shorthand (`1Q64`, `wQ1`, ...).
    pub op: String,
    /// Transfer style (`bp` or `chained`).
    pub style: String,
    /// End-to-end simulated cycles.
    pub end_cycle: Cycle,
    /// Simulated marginal cycles per stage (pack/send/wire/deposit/unpack);
    /// sums exactly to `end_cycle`.
    pub sim: [Cycle; 5],
    /// Model-predicted marginal cycles per stage from the calibrated rate
    /// table, after applying the composition rule (see
    /// [`compose_marginals`]) so both splits share the same telescoped
    /// semantics.
    pub model: [f64; 5],
    /// Total-variation distance between the normalised stage splits,
    /// `0.5 * Σ |sim_share − model_share|` in `[0, 1]`.
    pub attribution_error: f64,
}

impl PhaseRow {
    /// Stage names, in array order.
    pub const STAGES: [&'static str; 5] = PhaseTimeline::STAGES;
}

/// Model-predicted cycles for one stage: the time to move `bytes` at the
/// calibrated rate, in clock cycles. Absent rates (a transfer the machine
/// cannot perform) predict zero.
fn stage_cycles(machine: &Machine, rates: &RateTable, t: BasicTransfer, bytes: u64) -> f64 {
    match rates.rate(t) {
        Ok(rate) if rate.as_bytes_per_sec() > 0.0 => {
            bytes as f64 * machine.clock().hz() / rate.as_bytes_per_sec()
        }
        _ => 0.0,
    }
}

/// The model's predicted per-stage cycles for `xQy` under `style`.
///
/// Buffer packing runs all five stages: a local pack copy `xC1`, a
/// contiguous send (`1S0`, DMA-driven where the machine fetches for the
/// network), the wire (`Nd`), a contiguous deposit (`0D1`) and the unpack
/// copy `1Cy`. Chaining collapses pack and unpack into the send/deposit
/// stages: the send engine walks the source pattern directly (`xS0`) and
/// the receive engine stores each word at its home (`0Dy`), paying the
/// address-data network when either side is non-contiguous.
pub fn model_stages(
    machine: &Machine,
    rates: &RateTable,
    op: &str,
    style: Style,
    words: u64,
) -> [f64; 5] {
    let (x, y) = parse_q(op);
    let bytes = words * 8;
    let cyc = |t, b| stage_cycles(machine, rates, t, b);
    match style {
        Style::BufferPacking => {
            let contig = AccessPattern::Contiguous;
            let send = if machine.caps.fetch_send {
                BasicTransfer::fetch_send(contig)
            } else {
                BasicTransfer::load_send(contig)
            };
            [
                cyc(BasicTransfer::copy(x, contig), bytes),
                cyc(send, bytes),
                cyc(BasicTransfer::net_data(), bytes),
                cyc(BasicTransfer::receive_deposit(contig), bytes),
                cyc(BasicTransfer::copy(contig, y), bytes),
            ]
        }
        Style::Chained => {
            let contiguous = x == AccessPattern::Contiguous && y == AccessPattern::Contiguous;
            let wire = if contiguous {
                BasicTransfer::net_data()
            } else {
                BasicTransfer::net_addr_data()
            };
            let wire_bytes = if contiguous { bytes } else { bytes * 2 };
            let deposit = if machine.caps.deposit_noncontiguous {
                BasicTransfer::receive_deposit(y)
            } else {
                BasicTransfer::receive_store(y)
            };
            [
                0.0,
                cyc(BasicTransfer::load_send(x), bytes),
                cyc(wire, wire_bytes),
                cyc(deposit, bytes),
                0.0,
            ]
        }
    }
}

/// Applies the model's composition rule to raw per-stage costs, producing
/// marginal cycles with the same telescoped semantics as the simulator's
/// [`PhaseTimeline::marginals`]: sequential stages (`∘`) add, while the
/// pipelined `send ‖ wire ‖ deposit` group overlaps, so each member
/// contributes only the cycles by which it outlasts the stages already
/// running when it drains.
pub fn compose_marginals(raw: [f64; 5]) -> [f64; 5] {
    let [pack, send, wire, deposit, unpack] = raw;
    [
        pack,
        send,
        (wire - send).max(0.0),
        (deposit - send.max(wire)).max(0.0),
        unpack,
    ]
}

/// Total-variation distance between two stage splits, after normalising
/// each to shares. Zero when either split is all-zero.
fn attribution_error(sim: &[Cycle; 5], model: &[f64; 5]) -> f64 {
    let sim_total: f64 = sim.iter().map(|&c| c as f64).sum();
    let model_total: f64 = model.iter().sum();
    if sim_total <= 0.0 || model_total <= 0.0 {
        return 0.0;
    }
    0.5 * sim
        .iter()
        .zip(model)
        .map(|(&s, &m)| (s as f64 / sim_total - m / model_total).abs())
        .sum::<f64>()
}

/// Runs [`PHASE_OPS`] in both styles on `machine` and attributes each run's
/// stage split against the model's prediction.
///
/// # Errors
///
/// Propagates simulator errors from the underlying exchanges.
pub fn phase_breakdown(
    machine: &Machine,
    rates: &RateTable,
    words: u64,
) -> SimResult<Vec<PhaseRow>> {
    let cfg = paper_exchange_cfg(machine, words);
    let mut rows = Vec::new();
    for op in PHASE_OPS {
        let (x, y) = parse_q(op);
        for (style, tag) in [(Style::BufferPacking, "bp"), (Style::Chained, "chained")] {
            let r = run_exchange(machine, x, y, style, &cfg)?;
            let sim = r.phases.marginals(r.end_cycle);
            let model = compose_marginals(model_stages(machine, rates, op, style, words));
            rows.push(PhaseRow {
                op: op.to_string(),
                style: tag.to_string(),
                end_cycle: r.end_cycle,
                sim,
                model,
                attribution_error: attribution_error(&sim, &model),
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcomm_machines::microbench;

    #[test]
    fn marginals_sum_to_end_cycle_and_error_is_bounded() {
        let machine = Machine::t3d();
        let rates = microbench::measure_table(&machine, 2048).expect("rates");
        let rows = phase_breakdown(&machine, &rates, 1024).expect("breakdown");
        assert_eq!(rows.len(), PHASE_OPS.len() * 2);
        for row in &rows {
            assert_eq!(
                row.sim.iter().sum::<Cycle>(),
                row.end_cycle,
                "{} {} marginals must telescope to the end cycle",
                row.op,
                row.style
            );
            assert!(
                (0.0..=1.0).contains(&row.attribution_error),
                "attribution error is a total-variation distance"
            );
        }
    }

    #[test]
    fn contiguous_bp_model_predicts_all_five_stages() {
        let machine = Machine::t3d();
        let rates = microbench::measure_table(&machine, 2048).expect("rates");
        let model = model_stages(&machine, &rates, "64Q64", Style::BufferPacking, 1024);
        assert!(
            model.iter().all(|&c| c > 0.0),
            "all raw stage costs present: {model:?}"
        );
        let chained = model_stages(&machine, &rates, "64Q64", Style::Chained, 1024);
        assert_eq!(chained[0], 0.0);
        assert_eq!(chained[4], 0.0);
        assert!(chained[1] > 0.0 && chained[2] > 0.0 && chained[3] > 0.0);
    }

    #[test]
    fn composition_telescopes_to_serial_plus_pipelined_max() {
        let raw = [10.0, 20.0, 50.0, 30.0, 5.0];
        let composed = compose_marginals(raw);
        // pack + max(send, wire, deposit) + unpack.
        assert_eq!(composed.iter().sum::<f64>(), 10.0 + 50.0 + 5.0);
        assert_eq!(composed[3], 0.0, "deposit hides inside the wire stage");
    }
}
