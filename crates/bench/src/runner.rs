//! The parallel, memoized sweep engine.
//!
//! [`run_sweep`] evaluates every selected experiment of the reproduction,
//! fanning independent points across a configurable worker count
//! ([`SweepOptions::jobs`]) while the process-wide measurement cache
//! ([`memcomm_machines::memo`]) guarantees each distinct
//! `(machine, transfer, words)` point simulates exactly once per process.
//!
//! The engine returns two artifacts with deliberately different contracts:
//!
//! * a [`FullReport`] — the machine-readable results. Its JSON rendering is
//!   **byte-deterministic**: points come back in input order whatever the
//!   worker count, floats render shortest-round-trip, and no wall-clock
//!   data is included, so a parallel run is byte-identical to a serial one
//!   (the equivalence tests assert exactly this);
//! * a [`RunMetrics`] — the run's *observability* data (wall times, cache
//!   hit rate, simulated cycles). Timing is inherently nondeterministic, so
//!   it lives here and never contaminates the report.

use std::collections::BTreeSet;
use std::time::Instant;

use memcomm_machines::memo::{self, CacheStats};
use memcomm_machines::{calibrate, microbench, Machine};
use memcomm_memsim::stats::{self as simstats, FaultCounters, SimCounters};
use memcomm_memsim::SimResult;
use memcomm_obs::{HistogramSummary, Obs};
use memcomm_util::json::Json;
use memcomm_util::par;

use crate::experiments::{self, EXCHANGE_WORDS, MICRO_WORDS};

/// Every experiment key, in evaluation (and report) order.
pub const SECTIONS: &[&str] = &[
    "calibration",
    "figure1",
    "table1",
    "table2",
    "table3",
    "figure4",
    "table4",
    "figure7",
    "figure8",
    "table5",
    "section341",
    "table6",
    "putget",
    "scaling",
    "accuracy",
    "faults",
];

/// What to run and how wide to fan out.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads for the point sweeps (1 = serial).
    pub jobs: usize,
    /// Payload words for microbenchmark measurements.
    pub micro_words: u64,
    /// Payload words for end-to-end exchanges.
    pub exchange_words: u64,
    /// Selected experiment keys (empty = all of [`SECTIONS`]).
    pub sections: BTreeSet<String>,
    /// Fault-injection settings for the robustness section. The zero-rate
    /// default makes the section a faultless baseline; its seed is never
    /// echoed into the report, so zero-rate runs are byte-identical
    /// whatever the seed.
    pub faults: experiments::FaultSettings,
    /// Also run the per-stage phase-attribution breakdown (off by default;
    /// not part of [`SECTIONS`] so default reports keep their exact bytes).
    pub phases: bool,
    /// Also execute Table 6 on the discrete-event network engine (off by
    /// default; like `phases`, not part of [`SECTIONS`] so default reports
    /// keep their exact bytes).
    pub engine: Option<experiments::EngineSettings>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: par::available_jobs(),
            micro_words: MICRO_WORDS,
            exchange_words: EXCHANGE_WORDS,
            sections: BTreeSet::new(),
            faults: experiments::FaultSettings::default(),
            phases: false,
            engine: None,
        }
    }
}

impl SweepOptions {
    /// Whether an experiment key is selected.
    pub fn wants(&self, key: &str) -> bool {
        self.sections.is_empty() || self.sections.contains(key)
    }
}

/// Rows measured on one machine.
#[derive(Debug, Clone)]
pub struct MachineSeries<T> {
    /// Machine name.
    pub machine: String,
    /// The measured rows.
    pub rows: Vec<T>,
}

/// One calibration comparison row (flattened across machines).
#[derive(Debug, Clone)]
pub struct CalRow {
    /// Machine name.
    pub machine: String,
    /// Transfer notation.
    pub transfer: String,
    /// Simulated rate (MB/s).
    pub simulated: f64,
    /// The paper's rate (MB/s).
    pub paper: f64,
    /// `simulated / paper`.
    pub ratio: f64,
}

/// Outcome of one experiment section: completed, or the simulation error /
/// worker panic that stopped it. A failed section leaves its report slice
/// partial (usually empty) and the sweep moves on — the report is still
/// rendered, with the failure on record.
#[derive(Debug, Clone)]
pub struct SectionStatus {
    /// Experiment key (one of [`SECTIONS`]; figures 7/8 report as
    /// `section5`, matching the metrics breakdown).
    pub name: String,
    /// Whether the section completed.
    pub ok: bool,
    /// The simulation error or panic message, when it did not.
    pub error: Option<String>,
}

/// The complete machine-readable reproduction report.
///
/// Field order is the JSON rendering order; keep it stable — the
/// serial-vs-parallel equivalence tests compare rendered bytes.
#[derive(Debug, Clone, Default)]
pub struct FullReport {
    /// Microbenchmark payload words.
    pub micro_words: u64,
    /// Exchange payload words.
    pub exchange_words: u64,
    /// Calibration rows (both machines, flattened).
    pub calibration: Vec<CalRow>,
    /// Figure 1 series.
    pub figure1: Vec<MachineSeries<experiments::Figure1Point>>,
    /// Table 1 series.
    pub table1: Vec<MachineSeries<experiments::RateRow>>,
    /// Table 2 series.
    pub table2: Vec<MachineSeries<experiments::RateRow>>,
    /// Table 3 series.
    pub table3: Vec<MachineSeries<experiments::RateRow>>,
    /// Figure 4 series.
    pub figure4: Vec<MachineSeries<experiments::StridePoint>>,
    /// Table 4 series.
    pub table4: Vec<MachineSeries<experiments::NetworkRow>>,
    /// Section 5 (Figures 7/8) series.
    pub section5: Vec<MachineSeries<experiments::QRow>>,
    /// Table 5 rows.
    pub table5: Vec<experiments::LoadsVsStoresRow>,
    /// Section 3.4.1 worked example.
    pub section341: Option<experiments::Section341>,
    /// Table 6 rows.
    pub table6: Vec<experiments::KernelRow>,
    /// Put-vs-get extension series.
    pub put_vs_get: Vec<MachineSeries<experiments::PutGetRow>>,
    /// Scaling extension series.
    pub scaling: Vec<MachineSeries<experiments::ScalingPoint>>,
    /// Model-accuracy extension series.
    pub model_accuracy: Vec<MachineSeries<experiments::AccuracyRow>>,
    /// Robustness (fault-injection) series.
    pub faults: Vec<MachineSeries<experiments::FaultRow>>,
    /// Per-stage phase attribution series (opt-in via
    /// [`SweepOptions::phases`]; the JSON key is omitted when empty so
    /// default runs render byte-identically to earlier versions).
    pub phases: Vec<MachineSeries<crate::phases::PhaseRow>>,
    /// Event-engine Table 6 rows (opt-in via [`SweepOptions::engine`]; the
    /// JSON key is omitted when empty so default runs render
    /// byte-identically to earlier versions).
    pub engine_table6: Vec<experiments::EngineRow>,
    /// Per-section completion status, in evaluation order.
    pub sections: Vec<SectionStatus>,
}

fn series<T>(list: &[MachineSeries<T>], row: impl Fn(&T) -> Json + Copy) -> Json {
    Json::arr(list, |s| {
        Json::obj([
            ("machine", Json::str(&s.machine)),
            ("rows", Json::arr(&s.rows, row)),
        ])
    })
}

impl FullReport {
    /// Renders the report as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("micro_words", self.micro_words.into()),
            ("exchange_words", self.exchange_words.into()),
            (
                "calibration",
                Json::arr(&self.calibration, |r| {
                    Json::obj([
                        ("machine", Json::str(&r.machine)),
                        ("transfer", Json::str(&r.transfer)),
                        ("simulated", r.simulated.into()),
                        ("paper", r.paper.into()),
                        ("ratio", r.ratio.into()),
                    ])
                }),
            ),
            (
                "figure1",
                series(&self.figure1, |p| {
                    Json::obj([
                        ("message_words", p.message_words.into()),
                        ("pvm", p.pvm.into()),
                        ("low_level", p.low_level.into()),
                    ])
                }),
            ),
            ("table1", series(&self.table1, rate_row)),
            ("table2", series(&self.table2, rate_row)),
            ("table3", series(&self.table3, rate_row)),
            (
                "figure4",
                series(&self.figure4, |p| {
                    Json::obj([
                        ("stride", p.stride.into()),
                        ("loads", p.loads.into()),
                        ("stores", p.stores.into()),
                    ])
                }),
            ),
            (
                "table4",
                series(&self.table4, |r| {
                    Json::obj([
                        ("congestion", r.congestion.into()),
                        ("data_only", r.data_only.into()),
                        ("addr_data", r.addr_data.into()),
                        ("paper_data_only", r.paper_data_only.into()),
                        ("paper_addr_data", r.paper_addr_data.into()),
                    ])
                }),
            ),
            (
                "section5",
                series(&self.section5, |r| {
                    Json::obj([
                        ("op", Json::str(&r.op)),
                        ("sim_bp", r.sim_bp.into()),
                        ("sim_chained", r.sim_chained.into()),
                        ("model_bp", r.model_bp.into()),
                        ("model_chained", r.model_chained.into()),
                        ("paper_model_bp", r.paper_model_bp.into()),
                        ("paper_model_chained", r.paper_model_chained.into()),
                        ("verified", r.verified.into()),
                    ])
                }),
            ),
            (
                "table5",
                Json::arr(&self.table5, |r| {
                    Json::obj([
                        ("op", Json::str(&r.op)),
                        ("machine", Json::str(&r.machine)),
                        ("sim_bp", r.sim_bp.into()),
                        ("sim_chained", r.sim_chained.into()),
                        ("paper_measured_bp", r.paper_measured_bp.into()),
                        ("paper_measured_chained", r.paper_measured_chained.into()),
                        ("paper_model_bp", r.paper_model_bp.into()),
                        ("paper_model_chained", r.paper_model_chained.into()),
                    ])
                }),
            ),
            (
                "section341",
                self.section341.as_ref().map_or(Json::Null, |s| {
                    Json::obj([
                        ("model_estimate", s.model_estimate.into()),
                        ("simulated", s.simulated.into()),
                        ("paper_estimate", s.paper_estimate.into()),
                        ("paper_measured", s.paper_measured.into()),
                    ])
                }),
            ),
            (
                "table6",
                Json::arr(&self.table6, |r| {
                    Json::obj([
                        ("kernel", Json::str(&r.kernel)),
                        ("sim_bp", r.sim_bp.into()),
                        ("sim_chained", r.sim_chained.into()),
                        ("sim_pvm", r.sim_pvm.into()),
                        ("model_chained", r.model_chained.into()),
                        ("paper_bp", r.paper_bp.into()),
                        ("paper_chained", r.paper_chained.into()),
                        ("paper_model_chained", r.paper_model_chained.into()),
                        ("paper_pvm3", r.paper_pvm3.into()),
                        ("congestion", r.congestion.into()),
                        ("verified", r.verified.into()),
                    ])
                }),
            ),
            (
                "put_vs_get",
                series(&self.put_vs_get, |r| {
                    Json::obj([
                        ("op", Json::str(&r.op)),
                        ("put", r.put.into()),
                        ("get", r.get.into()),
                        ("verified", r.verified.into()),
                    ])
                }),
            ),
            (
                "scaling",
                series(&self.scaling, |p| {
                    Json::obj([
                        ("n", p.n.into()),
                        ("patch_words", p.patch_words.into()),
                        ("pvm", p.pvm.into()),
                        ("buffer_packing", p.buffer_packing.into()),
                        ("chained", p.chained.into()),
                    ])
                }),
            ),
            (
                "model_accuracy",
                series(&self.model_accuracy, |r| {
                    Json::obj([
                        ("op", Json::str(&r.op)),
                        ("style", Json::str(&r.style)),
                        ("model", r.model.into()),
                        ("simulated", r.simulated.into()),
                        ("ratio", r.ratio.into()),
                    ])
                }),
            ),
            (
                "faults",
                series(&self.faults, |r| {
                    Json::obj([
                        ("op", Json::str(&r.op)),
                        ("style", Json::str(&r.style)),
                        ("mbps", r.mbps.into()),
                        ("frames_sent", r.frames_sent.into()),
                        ("retransmissions", r.retransmissions.into()),
                        ("degraded", r.degraded.into()),
                        ("verified", r.verified.into()),
                        ("error", r.error.as_deref().map_or(Json::Null, Json::str)),
                    ])
                }),
            ),
        ];
        if !self.phases.is_empty() {
            pairs.push(("phases", series(&self.phases, phase_row)));
        }
        if !self.engine_table6.is_empty() {
            pairs.push((
                "engine_table6",
                Json::arr(&self.engine_table6, |r| {
                    Json::obj([
                        ("kernel", Json::str(&r.kernel)),
                        ("machine", Json::str(&r.machine)),
                        ("nodes", r.nodes.into()),
                        ("engine_congestion", r.engine_congestion.into()),
                        ("analytic_congestion", r.analytic_congestion.into()),
                        ("engine_chained", r.engine_chained.into()),
                        ("analytic_chained", r.analytic_chained.into()),
                        ("ratio", r.ratio.into()),
                        ("cycles", r.cycles.into()),
                        ("flit_hops", r.flit_hops.into()),
                        ("windows", r.windows.into()),
                        ("digest", Json::str(&r.digest)),
                        ("verified", r.verified.into()),
                    ])
                }),
            ));
        }
        pairs.push((
            "sections",
            Json::arr(&self.sections, |st| {
                Json::obj([
                    ("name", Json::str(&st.name)),
                    ("ok", st.ok.into()),
                    ("error", st.error.as_deref().map_or(Json::Null, Json::str)),
                ])
            }),
        ));
        Json::obj(pairs)
    }
}

fn phase_row(r: &crate::phases::PhaseRow) -> Json {
    const IDX: [usize; 5] = [0, 1, 2, 3, 4];
    Json::obj([
        ("op", Json::str(&r.op)),
        ("style", Json::str(&r.style)),
        ("end_cycle", r.end_cycle.into()),
        ("attribution_error", r.attribution_error.into()),
        (
            "stages",
            Json::arr(&IDX, |&i| {
                Json::obj([
                    ("stage", Json::str(crate::phases::PhaseRow::STAGES[i])),
                    ("sim_cycles", r.sim[i].into()),
                    ("model_cycles", r.model[i].into()),
                ])
            }),
        ),
    ])
}

fn rate_row(r: &experiments::RateRow) -> Json {
    Json::obj([
        ("transfer", Json::str(&r.transfer)),
        ("simulated", r.simulated.into()),
        ("paper", r.paper.into()),
    ])
}

/// Wall time and point count for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentMetrics {
    /// Experiment key (one of [`SECTIONS`]).
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Result rows produced.
    pub points: u64,
}

/// Observability data for one sweep run. Deliberately separate from
/// [`FullReport`]: wall times differ run to run, so they must never enter
/// the deterministic report.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Worker threads used.
    pub jobs: usize,
    /// Total result rows across all experiments.
    pub points: u64,
    /// Measurement-cache counters for this run (hits, misses, entries).
    pub cache: CacheStats,
    /// Simulated-machine counters for this run (cycles, words, count).
    pub sim: SimCounters,
    /// Fault-machinery counters for this run (injected, retried, degraded,
    /// dropped).
    pub faults: FaultCounters,
    /// Total wall-clock milliseconds.
    pub wall_ms: f64,
    /// Registry histogram summaries at the end of the run (protocol frame
    /// latency, retries per frame, queue depths), sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-experiment breakdown.
    pub experiments: Vec<ExperimentMetrics>,
}

impl RunMetrics {
    /// Renders the metrics as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("jobs", (self.jobs as u64).into()),
            ("points", self.points.into()),
            ("cache_hits", self.cache.hits.into()),
            ("cache_misses", self.cache.misses.into()),
            ("cache_entries", self.cache.entries.into()),
            ("cache_hit_rate", self.cache.hit_rate().into()),
            ("sim_cycles", self.sim.cycles.into()),
            ("sim_words", self.sim.words.into()),
            ("measurements", self.sim.measurements.into()),
            ("faults_injected", self.faults.injected.into()),
            ("faults_retried", self.faults.retried.into()),
            ("faults_degraded", self.faults.degraded.into()),
            ("faults_dropped", self.faults.dropped.into()),
            ("wall_ms", self.wall_ms.into()),
            (
                "histograms",
                Json::arr(&self.histograms, |(name, h)| {
                    Json::obj([
                        ("name", Json::str(name)),
                        ("count", h.count.into()),
                        ("sum", h.sum.into()),
                        ("min", h.min.into()),
                        ("max", h.max.into()),
                        ("mean", h.mean.into()),
                        ("p50", h.p50.into()),
                        ("p99", h.p99.into()),
                        ("p999", h.p999.into()),
                    ])
                }),
            ),
            (
                "experiments",
                Json::arr(&self.experiments, |e| {
                    Json::obj([
                        ("name", Json::str(&e.name)),
                        ("wall_ms", e.wall_ms.into()),
                        ("points", e.points.into()),
                    ])
                }),
            ),
        ])
    }

    /// One-line human summary (cache behaviour + wall time).
    pub fn summary(&self) -> String {
        format!(
            "{} points in {:.0} ms on {} worker(s); cache: {} hits / {} misses ({:.0}% hit rate, {} entries); simulated {} cycles over {} measurements; faults: {} injected / {} retried / {} degraded / {} dropped",
            self.points,
            self.wall_ms,
            self.jobs,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries,
            self.sim.cycles,
            self.sim.measurements,
            self.faults.injected,
            self.faults.retried,
            self.faults.degraded,
            self.faults.dropped,
        )
    }
}

/// One experiment section, run behind a panic shield: a failing experiment
/// (a typed simulation error, or a panic escaping a worker thread) records
/// its status and zero points, and the sweep moves on with a partial
/// report instead of tearing the whole run down.
fn run_section(
    name: &str,
    statuses: &mut Vec<SectionStatus>,
    metrics: &mut Vec<ExperimentMetrics>,
    f: &mut dyn FnMut() -> SimResult<u64>,
) {
    let t = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    let (points, ok, error) = match outcome {
        Ok(Ok(points)) => (points, true, None),
        Ok(Err(e)) => (0, false, Some(e.to_string())),
        Err(payload) => (0, false, Some(panic_text(payload.as_ref()))),
    };
    metrics.push(ExperimentMetrics {
        name: name.to_string(),
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        points,
    });
    statuses.push(SectionStatus {
        name: name.to_string(),
        ok,
        error,
    });
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|m| (*m).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .map_or_else(
            || "worker panicked without a message".to_string(),
            |m| format!("panic: {m}"),
        )
}

/// Runs the selected experiments with `opts.jobs` workers and returns the
/// deterministic report plus this run's metrics.
///
/// Sets the process-wide default worker count as a side effect (the
/// experiment functions fan out through it). Never panics on experiment
/// failure: each section runs isolated, and the report's `sections` field
/// records which completed.
pub fn run_sweep(opts: &SweepOptions) -> (FullReport, RunMetrics) {
    par::set_jobs(opts.jobs);
    // Fault/protocol counters live in a per-run registry, not process-wide
    // statics: adopt the caller's installed observability handle (so traces
    // and histograms flow to it), or install a registry-only one of our own.
    let ambient = Obs::current();
    let obs = if ambient.is_enabled() {
        ambient
    } else {
        Obs::new(false)
    };
    let _obs_guard = obs.install();
    let cache_before = memo::stats();
    let sim_before = simstats::counters();
    let faults_before = FaultCounters::from_obs(&obs);
    let start = Instant::now();

    let mut report = FullReport {
        micro_words: opts.micro_words,
        exchange_words: opts.exchange_words,
        ..FullReport::default()
    };
    let mut experiment_metrics: Vec<ExperimentMetrics> = Vec::new();
    let mut statuses: Vec<SectionStatus> = Vec::new();
    let machines = [Machine::t3d(), Machine::paragon()];

    if opts.wants("calibration") {
        run_section(
            "calibration",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    for r in calibrate::calibration_report(m, opts.micro_words)? {
                        report.calibration.push(CalRow {
                            machine: m.name.to_string(),
                            transfer: r.transfer.to_string(),
                            simulated: r.simulated.as_mbps(),
                            paper: r.paper.as_mbps(),
                            ratio: r.ratio(),
                        });
                    }
                }
                Ok(report.calibration.len() as u64)
            },
        );
    }

    if opts.wants("figure1") {
        run_section(
            "figure1",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    report.figure1.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: experiments::figure1(m)?,
                    });
                }
                Ok(report.figure1.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    for (key, f) in [
        (
            "table1",
            experiments::table1 as fn(&Machine, u64) -> SimResult<Vec<experiments::RateRow>>,
        ),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
    ] {
        if !opts.wants(key) {
            continue;
        }
        run_section(key, &mut statuses, &mut experiment_metrics, &mut || {
            let mut n = 0u64;
            for m in &machines {
                let rows = f(m, opts.micro_words)?;
                n += rows.len() as u64;
                let s = MachineSeries {
                    machine: m.name.to_string(),
                    rows,
                };
                match key {
                    "table1" => report.table1.push(s),
                    "table2" => report.table2.push(s),
                    _ => report.table3.push(s),
                }
            }
            Ok(n)
        });
    }

    if opts.wants("figure4") {
        run_section(
            "figure4",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    report.figure4.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: experiments::figure4(m, opts.micro_words)?,
                    });
                }
                Ok(report.figure4.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    if opts.wants("table4") {
        run_section(
            "table4",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    report.table4.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: experiments::table4(m, opts.micro_words),
                    });
                }
                Ok(report.table4.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    if opts.wants("figure7") || opts.wants("figure8") {
        run_section(
            "section5",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                let mut n = 0u64;
                for m in &machines {
                    let is_t3d = m.name == "Cray T3D";
                    if (is_t3d && !opts.wants("figure7")) || (!is_t3d && !opts.wants("figure8")) {
                        continue;
                    }
                    let rates = microbench::measure_table(m, opts.micro_words)?;
                    let rows = experiments::section5(m, &rates, opts.exchange_words)?;
                    n += rows.len() as u64;
                    report.section5.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows,
                    });
                }
                Ok(n)
            },
        );
    }

    if opts.wants("table5") {
        run_section(
            "table5",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                report.table5 = experiments::table5(opts.exchange_words)?;
                Ok(report.table5.len() as u64)
            },
        );
    }

    if opts.wants("section341") {
        run_section(
            "section341",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                let rates = microbench::measure_table(&Machine::t3d(), opts.micro_words)?;
                report.section341 = Some(experiments::section341(&rates)?);
                Ok(1)
            },
        );
    }

    if opts.wants("table6") {
        run_section(
            "table6",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                let rates = microbench::measure_table(&Machine::t3d(), opts.micro_words)?;
                report.table6 = experiments::table6(&rates)?;
                Ok(report.table6.len() as u64)
            },
        );
    }

    if opts.wants("putget") {
        run_section(
            "putget",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    report.put_vs_get.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: experiments::put_vs_get(m, opts.exchange_words)?,
                    });
                }
                Ok(report.put_vs_get.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    if opts.wants("scaling") {
        run_section(
            "scaling",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                let t3d = Machine::t3d();
                report.scaling.push(MachineSeries {
                    machine: t3d.name.to_string(),
                    rows: experiments::scaling(&t3d)?,
                });
                Ok(report.scaling.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    if opts.wants("accuracy") {
        run_section(
            "accuracy",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    let rates = microbench::measure_table(m, opts.micro_words)?;
                    report.model_accuracy.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: experiments::model_accuracy(m, &rates, opts.exchange_words)?,
                    });
                }
                Ok(report
                    .model_accuracy
                    .iter()
                    .map(|s| s.rows.len() as u64)
                    .sum())
            },
        );
    }

    if opts.wants("faults") {
        run_section(
            "faults",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    report.faults.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: experiments::faults(m, opts.exchange_words, &opts.faults),
                    });
                }
                Ok(report.faults.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    if opts.phases {
        run_section(
            "phases",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                for m in &machines {
                    let rates = microbench::measure_table(m, opts.micro_words)?;
                    report.phases.push(MachineSeries {
                        machine: m.name.to_string(),
                        rows: crate::phases::phase_breakdown(m, &rates, opts.exchange_words)?,
                    });
                }
                Ok(report.phases.iter().map(|s| s.rows.len() as u64).sum())
            },
        );
    }

    if let Some(engine) = opts.engine {
        run_section(
            "engine",
            &mut statuses,
            &mut experiment_metrics,
            &mut || {
                report.engine_table6 = experiments::engine_table6(&engine)?;
                Ok(report.engine_table6.len() as u64)
            },
        );
    }

    report.sections = statuses;

    let metrics = RunMetrics {
        jobs: opts.jobs,
        points: experiment_metrics.iter().map(|e| e.points).sum(),
        cache: memo::stats().since(cache_before),
        sim: simstats::counters().since(sim_before),
        faults: FaultCounters::from_obs(&obs).since(faults_before),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        histograms: obs
            .metrics_snapshot()
            .map(|s| s.histograms)
            .unwrap_or_default(),
        experiments: experiment_metrics,
    };
    (report, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            micro_words: 1024,
            exchange_words: 512,
            sections: ["table1", "calibration"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn sweep_reports_points_and_cache_traffic() {
        let (report, metrics) = run_sweep(&small_opts(2));
        assert_eq!(report.table1.len(), 2);
        assert!(!report.calibration.is_empty());
        assert!(metrics.points > 0);
        assert_eq!(metrics.experiments.len(), 2);
        let total = metrics.cache.hits + metrics.cache.misses;
        assert!(total > 0, "the sweep must go through the memo cache");
        // Calibration and Table 1 overlap on local-copy transfers, so a
        // combined run must hit the cache.
        assert!(metrics.cache.hits > 0, "{:?}", metrics.cache);
    }

    #[test]
    fn json_rendering_is_stable() {
        let (report, _) = run_sweep(&small_opts(1));
        assert_eq!(report.to_json().render(), report.to_json().render());
    }

    #[test]
    fn metrics_render_without_wall_time_in_report() {
        let (report, metrics) = run_sweep(&small_opts(1));
        assert!(!report.to_json().render().contains("wall_ms"));
        assert!(metrics.to_json().render().contains("wall_ms"));
        assert!(metrics.summary().contains("hit rate"));
        assert!(metrics.summary().contains("injected"));
    }

    #[test]
    fn every_selected_section_reports_its_status() {
        let (report, _) = run_sweep(&small_opts(1));
        let names: Vec<&str> = report.sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["calibration", "table1"]);
        assert!(report.sections.iter().all(|s| s.ok && s.error.is_none()));
    }

    #[test]
    fn faults_section_runs_clean_by_default() {
        let opts = SweepOptions {
            jobs: 1,
            micro_words: 256,
            exchange_words: 256,
            sections: ["faults"].iter().map(|s| s.to_string()).collect(),
            ..SweepOptions::default()
        };
        let (report, metrics) = run_sweep(&opts);
        assert_eq!(report.faults.len(), 2, "both machines");
        for series in &report.faults {
            assert!(series.rows.iter().all(|r| r.verified && r.error.is_none()));
        }
        assert_eq!(metrics.faults.injected, 0, "zero-rate plan injects nothing");
        // The seed must leave no trace in the rendered report.
        let json = report.to_json().render();
        assert!(!json.contains("seed"), "fault seed leaked into the report");
    }

    #[test]
    fn a_failing_section_leaves_a_partial_report() {
        // An impossibly small cycle budget makes every resilient transfer
        // fail; the sweep must finish, record per-point errors, and keep the
        // section status ok (point failures are data, not section failures).
        let opts = SweepOptions {
            jobs: 1,
            micro_words: 256,
            exchange_words: 256,
            sections: ["faults"].iter().map(|s| s.to_string()).collect(),
            faults: crate::experiments::FaultSettings {
                max_cycles: Some(1),
                ..crate::experiments::FaultSettings::default()
            },
            phases: false,
            engine: None,
        };
        let (report, _) = run_sweep(&opts);
        assert!(report.sections.iter().all(|s| s.ok));
        for series in &report.faults {
            for r in &series.rows {
                assert!(!r.verified);
                let err = r.error.as_deref().expect("budget must trip");
                assert!(err.contains("cycle"), "unexpected error: {err}");
            }
        }
    }
}
