//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--all] [--figure1] [--table1] [--table2] [--table3] [--table4]
//!       [--figure4] [--figure7] [--figure8] [--table5] [--section341]
//!       [--table6] [--calibration] [--putget] [--scaling] [--accuracy]
//!       [--words N] [--exchange-words N] [--json PATH]
//! ```
//!
//! With no selection flags everything runs. `--json` additionally writes
//! the machine-readable results (the source of EXPERIMENTS.md).

use std::collections::BTreeSet;

use memcomm_bench::experiments::{self, EXCHANGE_WORDS, MICRO_WORDS};
use memcomm_bench::report::TextTable;
use memcomm_machines::{calibrate, microbench, Machine};
use serde::Serialize;

#[derive(Serialize)]
struct FullReport {
    micro_words: u64,
    exchange_words: u64,
    calibration: Vec<CalRow>,
    figure1: Vec<MachineSeries<experiments::Figure1Point>>,
    table1: Vec<MachineSeries<experiments::RateRow>>,
    table2: Vec<MachineSeries<experiments::RateRow>>,
    table3: Vec<MachineSeries<experiments::RateRow>>,
    figure4: Vec<MachineSeries<experiments::StridePoint>>,
    table4: Vec<MachineSeries<experiments::NetworkRow>>,
    section5: Vec<MachineSeries<experiments::QRow>>,
    table5: Vec<experiments::LoadsVsStoresRow>,
    section341: Option<experiments::Section341>,
    table6: Vec<experiments::KernelRow>,
    put_vs_get: Vec<MachineSeries<experiments::PutGetRow>>,
    scaling: Vec<MachineSeries<experiments::ScalingPoint>>,
    model_accuracy: Vec<MachineSeries<experiments::AccuracyRow>>,
}

#[derive(Serialize)]
struct MachineSeries<T> {
    machine: String,
    rows: Vec<T>,
}

#[derive(Serialize)]
struct CalRow {
    machine: String,
    transfer: String,
    simulated: f64,
    paper: f64,
    ratio: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: BTreeSet<&'static str> = BTreeSet::new();
    let mut micro_words = MICRO_WORDS;
    let mut exchange_words = EXCHANGE_WORDS;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {}
            "--figure1" => drop(selected.insert("figure1")),
            "--table1" => drop(selected.insert("table1")),
            "--table2" => drop(selected.insert("table2")),
            "--table3" => drop(selected.insert("table3")),
            "--table4" => drop(selected.insert("table4")),
            "--figure4" => drop(selected.insert("figure4")),
            "--figure7" => drop(selected.insert("figure7")),
            "--figure8" => drop(selected.insert("figure8")),
            "--table5" => drop(selected.insert("table5")),
            "--section341" => drop(selected.insert("section341")),
            "--table6" => drop(selected.insert("table6")),
            "--calibration" => drop(selected.insert("calibration")),
            "--putget" => drop(selected.insert("putget")),
            "--scaling" => drop(selected.insert("scaling")),
            "--accuracy" => drop(selected.insert("accuracy")),
            "--words" => {
                micro_words = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--words takes a number");
            }
            "--exchange-words" => {
                exchange_words = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exchange-words takes a number");
            }
            "--json" => json_path = Some(it.next().expect("--json takes a path").clone()),
            other => {
                eprintln!("unknown flag {other}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }
    let all = selected.is_empty();
    let want = |k: &str| all || selected.contains(k);

    let machines = [Machine::t3d(), Machine::paragon()];
    println!("memcomm reproduction of Stricker & Gross, ISCA 1995");
    println!(
        "(microbenchmarks: {micro_words} words; exchanges: {exchange_words} words; all rates MB/s)\n"
    );

    let mut report = FullReport {
        micro_words,
        exchange_words,
        calibration: Vec::new(),
        figure1: Vec::new(),
        table1: Vec::new(),
        table2: Vec::new(),
        table3: Vec::new(),
        figure4: Vec::new(),
        table4: Vec::new(),
        section5: Vec::new(),
        table5: Vec::new(),
        section341: None,
        table6: Vec::new(),
        put_vs_get: Vec::new(),
        scaling: Vec::new(),
        model_accuracy: Vec::new(),
    };

    if want("calibration") {
        for m in &machines {
            let rows = calibrate::calibration_report(m, micro_words);
            let mut t = TextTable::new(
                &format!("Calibration — {} (simulated vs paper basic rates)", m.name),
                &["transfer", "simulated", "paper", "ratio"],
            );
            for r in &rows {
                t.row(vec![
                    r.transfer.to_string(),
                    TextTable::mbps(r.simulated.as_mbps()),
                    TextTable::mbps(r.paper.as_mbps()),
                    format!("{:.2}", r.ratio()),
                ]);
                report.calibration.push(CalRow {
                    machine: m.name.to_string(),
                    transfer: r.transfer.to_string(),
                    simulated: r.simulated.as_mbps(),
                    paper: r.paper.as_mbps(),
                    ratio: r.ratio(),
                });
            }
            println!("{t}");
            println!(
                "mean log error {:.3}\n",
                calibrate::mean_log_error(&rows)
            );
        }
    }

    if want("figure1") {
        for m in &machines {
            let rows = experiments::figure1(m);
            let mut t = TextTable::new(
                &format!("Figure 1 — library throughput vs message size, {}", m.name),
                &["words", "PVM", "low-level"],
            );
            for p in &rows {
                t.row(vec![
                    p.message_words.to_string(),
                    TextTable::mbps(p.pvm),
                    TextTable::mbps(p.low_level),
                ]);
            }
            println!("{t}");
            report.figure1.push(MachineSeries {
                machine: m.name.to_string(),
                rows,
            });
        }
    }

    for (key, title, f) in [
        (
            "table1",
            "Table 1 — local memory-to-memory copies",
            experiments::table1 as fn(&Machine, u64) -> Vec<experiments::RateRow>,
        ),
        ("table2", "Table 2 — send transfers", experiments::table2),
        ("table3", "Table 3 — receive transfers", experiments::table3),
    ] {
        if !want(key) {
            continue;
        }
        for m in &machines {
            let rows = f(m, micro_words);
            let mut t = TextTable::new(
                &format!("{title}, {}", m.name),
                &["transfer", "simulated", "paper"],
            );
            for r in &rows {
                t.row(vec![
                    r.transfer.clone(),
                    TextTable::mbps(r.simulated),
                    TextTable::opt_mbps(r.paper),
                ]);
            }
            println!("{t}");
            let series = MachineSeries {
                machine: m.name.to_string(),
                rows,
            };
            match key {
                "table1" => report.table1.push(series),
                "table2" => report.table2.push(series),
                _ => report.table3.push(series),
            }
        }
    }

    if want("figure4") {
        for m in &machines {
            let rows = experiments::figure4(m, micro_words);
            let mut t = TextTable::new(
                &format!("Figure 4 — strided local copies, {}", m.name),
                &["stride", "sC1 (loads)", "1Cs (stores)"],
            );
            for p in &rows {
                t.row(vec![
                    p.stride.to_string(),
                    TextTable::mbps(p.loads),
                    TextTable::mbps(p.stores),
                ]);
            }
            println!("{t}");
            report.figure4.push(MachineSeries {
                machine: m.name.to_string(),
                rows,
            });
        }
    }

    if want("table4") {
        for m in &machines {
            let rows = experiments::table4(m, micro_words);
            let mut t = TextTable::new(
                &format!("Table 4 — network bandwidth vs congestion, {}", m.name),
                &["congestion", "Nd", "Nd paper", "Nadp", "Nadp paper"],
            );
            for r in &rows {
                t.row(vec![
                    format!("{:.0}", r.congestion),
                    TextTable::mbps(r.data_only),
                    TextTable::mbps(r.paper_data_only),
                    TextTable::mbps(r.addr_data),
                    TextTable::mbps(r.paper_addr_data),
                ]);
            }
            println!("{t}");
            report.table4.push(MachineSeries {
                machine: m.name.to_string(),
                rows,
            });
        }
    }

    if want("figure7") || want("figure8") {
        for m in &machines {
            let is_t3d = m.name == "Cray T3D";
            if (is_t3d && !want("figure7")) || (!is_t3d && !want("figure8")) {
                continue;
            }
            let rates = microbench::measure_table(m, micro_words);
            let rows = experiments::section5(m, &rates, exchange_words);
            let figure = if is_t3d { "Figure 7" } else { "Figure 8" };
            let mut t = TextTable::new(
                &format!("{figure} / Section 5 — buffer packing vs chained, {}", m.name),
                &[
                    "op",
                    "sim bp",
                    "model bp",
                    "paper bp",
                    "sim ch",
                    "model ch",
                    "paper ch",
                ],
            );
            for r in &rows {
                t.row(vec![
                    r.op.clone(),
                    TextTable::mbps(r.sim_bp),
                    TextTable::mbps(r.model_bp),
                    TextTable::opt_mbps(r.paper_model_bp),
                    TextTable::mbps(r.sim_chained),
                    TextTable::mbps(r.model_chained),
                    TextTable::opt_mbps(r.paper_model_chained),
                ]);
            }
            println!("{t}");
            report.section5.push(MachineSeries {
                machine: m.name.to_string(),
                rows,
            });
        }
    }

    if want("table5") {
        let rows = experiments::table5(exchange_words);
        let mut t = TextTable::new(
            "Table 5 — strided loads vs strided stores",
            &[
                "op",
                "machine",
                "sim bp",
                "paper bp",
                "sim ch",
                "paper ch",
            ],
        );
        for r in &rows {
            t.row(vec![
                r.op.clone(),
                r.machine.clone(),
                TextTable::mbps(r.sim_bp),
                TextTable::mbps(r.paper_measured_bp),
                TextTable::mbps(r.sim_chained),
                TextTable::mbps(r.paper_measured_chained),
            ]);
        }
        println!("{t}");
        report.table5 = rows;
    }

    if want("section341") {
        let t3d = Machine::t3d();
        let rates = microbench::measure_table(&t3d, micro_words);
        let s = experiments::section341(&rates);
        println!("### Section 3.4.1 — |1Q1024| on the T3D");
        println!(
            "model estimate {:.1} (paper {:.1}); simulated {:.1} (paper measured {:.1})\n",
            s.model_estimate, s.paper_estimate, s.simulated, s.paper_measured
        );
        report.section341 = Some(s);
    }

    if want("table6") {
        let t3d = Machine::t3d();
        let rates = microbench::measure_table(&t3d, micro_words);
        let rows = experiments::table6(&rates);
        let mut t = TextTable::new(
            "Table 6 — application kernels on the 64-node T3D (MB/s per node)",
            &[
                "kernel",
                "sim bp",
                "paper bp",
                "sim ch",
                "paper ch",
                "model ch",
                "paper model",
                "sim PVM",
                "paper PVM3",
            ],
        );
        for r in &rows {
            t.row(vec![
                r.kernel.clone(),
                TextTable::mbps(r.sim_bp),
                TextTable::mbps(r.paper_bp),
                TextTable::mbps(r.sim_chained),
                TextTable::mbps(r.paper_chained),
                TextTable::mbps(r.model_chained),
                TextTable::mbps(r.paper_model_chained),
                TextTable::mbps(r.sim_pvm),
                TextTable::mbps(r.paper_pvm3),
            ]);
        }
        println!("{t}");
        report.table6 = rows;
    }

    if want("putget") {
        for m in &machines {
            let rows = experiments::put_vs_get(m, exchange_words);
            let mut t = TextTable::new(
                &format!(
                    "Extension — deposits (put) vs withdrawals (get), {}",
                    m.name
                ),
                &["op", "put (chained)", "get"],
            );
            for r in &rows {
                t.row(vec![
                    r.op.clone(),
                    TextTable::mbps(r.put),
                    TextTable::mbps(r.get),
                ]);
            }
            println!("{t}");
            report.put_vs_get.push(MachineSeries {
                machine: m.name.to_string(),
                rows,
            });
        }
    }

    if want("scaling") {
        let t3d = Machine::t3d();
        let rows = experiments::scaling(&t3d);
        let mut t = TextTable::new(
            "Extension — transpose throughput vs problem size (T3D, 64 nodes)",
            &["matrix n", "patch words", "PVM", "buffer packing", "chained"],
        );
        for r in &rows {
            t.row(vec![
                r.n.to_string(),
                r.patch_words.to_string(),
                TextTable::mbps(r.pvm),
                TextTable::mbps(r.buffer_packing),
                TextTable::mbps(r.chained),
            ]);
        }
        println!("{t}");
        report.scaling.push(MachineSeries {
            machine: t3d.name.to_string(),
            rows,
        });
    }

    if want("accuracy") {
        for m in &machines {
            let rates = microbench::measure_table(m, micro_words);
            let rows = experiments::model_accuracy(m, &rates, exchange_words);
            let mut t = TextTable::new(
                &format!("Extension — model accuracy grid, {}", m.name),
                &["op", "style", "model", "simulated", "ratio"],
            );
            for r in &rows {
                t.row(vec![
                    r.op.clone(),
                    r.style.clone(),
                    TextTable::mbps(r.model),
                    TextTable::mbps(r.simulated),
                    format!("{:.2}", r.ratio),
                ]);
            }
            println!("{t}");
            println!(
                "mean |log ratio| {:.3}\n",
                experiments::accuracy_mean_log_error(&rows)
            );
            report.model_accuracy.push(MachineSeries {
                machine: m.name.to_string(),
                rows,
            });
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write json report");
        println!("wrote machine-readable report to {path}");
    }
}
