//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--all] [--figure1] [--table1] [--table2] [--table3] [--table4]
//!       [--figure4] [--figure7] [--figure8] [--table5] [--section341]
//!       [--table6] [--calibration] [--putget] [--scaling] [--accuracy]
//!       [--words N] [--exchange-words N] [--jobs N] [--serial]
//!       [--faults SEED] [--fault-rate P] [--max-cycles N]
//!       [--json PATH] [--metrics PATH] [--phases]
//!       [--engine analytic|event] [--nodes N] [--shards N]
//!       [--engine-transpose-n N] [--engine-sor-n N]
//!       [--trace-out PATH] [--profile PATH]
//!       [--bench-out PATH] [--bench-n N] [--bench-nodes N] [--bench-smoke]
//!       [--adversary KIND] [--adversary-bytes N] [--flow-latency]
//!       [--sample-every N] [--heatmap] [--metrics-out PATH]
//! ```
//!
//! With no selection flags everything runs. Experiments fan out across
//! `--jobs` worker threads (default: all cores; `--serial` forces one) and
//! share the process-wide measurement cache, so repeated points simulate
//! once. `--json` writes the machine-readable results — byte-identical
//! whatever the worker count. `--metrics` writes the run's observability
//! data (wall times, cache hit rate, simulated cycles, fault counters); a
//! one-line summary always prints to stderr.
//!
//! `--faults SEED` selects the robustness section: resilient transfers
//! under a deterministic fault plan derived from SEED (default injection
//! rate 2%, override with `--fault-rate`). The same seed produces a
//! byte-identical report at any `--jobs`. `--max-cycles` bounds each
//! resilient transfer's cycle budget; transfers that exceed it report a
//! per-point error instead of aborting the sweep. If any section fails,
//! the failures are summarised on stderr and the exit status is 1.
//!
//! `--engine event` additionally executes Table 6 round by round on the
//! sharded discrete-event network engine (`--nodes N` scales the simulated
//! torus/mesh up to kilo-node 3D tori — 1024 runs a 16×8×8 torus;
//! `--shards N` pins the engine shard count, default auto;
//! `--engine-transpose-n` and `--engine-sor-n` shrink the kernel instances
//! for smoke runs). Neither `--jobs` nor `--shards` ever changes results. The
//! engine rows appear in the text output and in `--json` under
//! `engine_table6`, next to the analytic congestion model's predictions;
//! they are byte-identical at any `--jobs`. `--engine analytic` is the
//! default and is a no-op: the report keeps its exact pre-engine bytes.
//!
//! `--bench-out PATH` runs the deterministic perf-regression suite instead
//! of a sweep and writes its canonical JSON report (validate it with the
//! `benchcheck` binary). The suite times the hot paths — the full `--all`
//! sweep memo-cold and memo-warm at 1 and 4 workers, the six Table 6
//! kernel × machine engine runs plus the retired heap-scheduler baseline
//! on the saturated transpose, and a protocol retry storm under a seeded
//! fault plan — reporting median-of-N wall times, simulated cycles per
//! second, and peak event-queue depths. `--bench-n N` overrides the
//! repetition count, `--bench-nodes N` the simulated node count, and
//! `--bench-smoke` selects the small CI preset (1 rep, 4 nodes, shrunken
//! payloads).
//!
//! `--adversary KIND` runs an adversarial-resilience scenario instead of a
//! sweep: a seeded traffic generator (`heavy-tail`, `incast`, `hotspot`,
//! `bursty`, or `retry-storm`) compiled onto the T3D torus (`--nodes N`
//! scales it; `--shards`/`--jobs` fan it out without changing results) and
//! run end to end under a fault storm — word drops plus transient
//! link-outage windows — with bounded per-hop retries and exponential
//! backoff. `--faults SEED` reseeds the storm and `--fault-rate P`
//! rescales it (`0` runs the generator faultless);
//! `--adversary-bytes N` sets the generator's base payload. The report
//! prints the resilience ledger — drops, retransmissions, abandonments,
//! and, when the storm wedges part of the network, the exact degraded
//! accounting (missing words per flow, last progress cycle, per-link
//! outages) instead of a bare deadlock. `--flow-latency` adds the
//! per-class inject→eject latency table (p50/p99/p999 cycles, background
//! vs adversarial traffic). All of it is byte-deterministic at any
//! `--jobs` × `--shards`.
//!
//! `--sample-every N` arms the engine's telemetry sampler for the
//! adversary scenario: every shard records utilization/backlog/retry
//! time-series at N-cycle ticks and attributes each flow's inject→eject
//! latency to inject/queue/wire/backoff components. Sampling never changes
//! simulation results — the scenario report keeps its exact unsampled
//! bytes and gains a trailing `telemetry` section. `--heatmap` (requires
//! `--sample-every`) prints the per-node link-utilization and
//! queue-hotspot grids over the scenario's torus. `--metrics-out PATH`
//! writes the run's registry and telemetry series as an OpenMetrics text
//! exposition (validate it with the `metricscheck` binary); it works in
//! both scenario and sweep modes. All three are byte-deterministic at any
//! `--jobs` × `--shards`.
//!
//! Observability: `--trace-out PATH` records cycle-accurate spans for
//! every simulated scenario and writes a Chrome `trace_event` JSON file
//! (load it at `chrome://tracing` or <https://ui.perfetto.dev>; validate it
//! with the `tracecheck` binary). `--profile PATH` writes the same spans
//! as a deterministic collapsed-stack text profile. `--phases` adds the
//! per-stage attribution section — simulated `pack/send/wire/deposit/
//! unpack` marginal cycles next to the model's predicted split per stage
//! (it appears in `--json` output as the `phases` key only when run).
//! Tracing never changes the report: the same sweep with and without
//! `--trace-out` renders byte-identical report JSON.

use memcomm_bench::experiments::EngineSettings;
use memcomm_bench::perfsuite;
use memcomm_bench::report::TextTable;
use memcomm_bench::runner::{self, SweepOptions};
use memcomm_obs::Obs;

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}; see the module docs for usage");
    std::process::exit(2);
}

/// The `--adversary` scenario: compile the generator onto the (optionally
/// scaled) T3D torus, run it end to end under the seeded fault storm with
/// bounded retries (see [`memcomm_bench::adversary`]), print the
/// resilience ledger (plus the per-class latency table under
/// `--flow-latency`), and write the byte-deterministic scenario JSON when
/// `--json` was given.
#[allow(clippy::too_many_arguments)]
fn adversary_scenario(
    kind: memcomm_netsim::AdversaryKind,
    bytes: Option<u64>,
    nodes: Option<usize>,
    shards: Option<usize>,
    jobs: usize,
    seed: Option<u64>,
    rate: Option<f64>,
    flow_latency: bool,
    sample_every: u64,
    heatmap: bool,
    json_path: Option<&str>,
    metrics_path: Option<&str>,
) {
    use memcomm_bench::adversary::{self, ScenarioOptions};

    let mut sopts = ScenarioOptions::new(kind);
    sopts.jobs = jobs;
    sopts.nodes = nodes;
    sopts.sample_every = sample_every;
    if let Some(b) = bytes {
        sopts.base_bytes = b;
    }
    if let Some(s) = shards {
        sopts.shards = s;
    }
    if let Some(s) = seed {
        sopts.seed = s;
    }
    if let Some(r) = rate {
        sopts.rate = r;
    }
    // Registry-only observability for the scenario: the engine flushes its
    // stall and telemetry counters here, and --metrics-out exports them.
    let obs = Obs::new(false);
    let _obs_guard = obs.install();
    let retry = sopts.retry_policy();
    let scenario = match adversary::run_scenario(&sopts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adversary scenario failed: {e}");
            std::process::exit(1);
        }
    };
    let out = &scenario.run.outcome;

    println!(
        "Adversarial resilience — {} traffic on the Cray T3D at {} nodes",
        kind.name(),
        scenario.nodes
    );
    println!(
        "(fault seed {:#x}, drop rate {}, retry budget {} with backoff {}<<k capped at {})\n",
        sopts.seed,
        sopts.rate,
        retry.max_retries,
        retry.backoff_base_cycles,
        retry.max_backoff_cycles
    );

    let mut t = TextTable::new("Resilience ledger", &["metric", "value"]);
    for (metric, value) in [
        ("flows", scenario.run.flows.to_string()),
        ("words delivered", out.words.to_string()),
        ("cycles", out.cycles.to_string()),
        ("flit hops", out.flit_hops.to_string()),
        ("dropped", out.dropped.to_string()),
        ("retransmitted", out.retried.to_string()),
        ("abandoned", out.abandoned.to_string()),
        ("digest", format!("{:016x}", out.digest)),
    ] {
        t.row(vec![metric.to_string(), value]);
    }
    println!("{t}");

    match &out.degraded {
        None => println!("completed cleanly: every word delivered\n"),
        Some(d) => {
            let missing: u64 = d.missing_flows.iter().map(|&(_, w)| w).sum();
            println!(
                "degraded: {} words missing across {} flow(s); last progress at cycle {}; {} link(s) saw outages\n",
                missing,
                d.missing_flows.len(),
                d.last_progress_cycle,
                d.per_link_outages.len()
            );
        }
    }

    if flow_latency {
        let mut t = TextTable::new(
            "Per-flow inject→eject latency (cycles)",
            &["class", "count", "mean", "p50", "p99", "p999", "max"],
        );
        for (i, h) in out.flow_latency.iter().enumerate() {
            t.row(vec![
                adversary::class_name(i),
                h.count.to_string(),
                format!("{:.1}", h.mean),
                h.p50.to_string(),
                h.p99.to_string(),
                h.p999.to_string(),
                h.max.to_string(),
            ]);
        }
        println!("{t}");
    }

    if let Some(tel) = &out.telemetry {
        let mut t = TextTable::new(
            "Critical-path attribution — mean inject→eject cycles per class",
            &[
                "class", "count", "inject", "queue", "wire", "backoff", "total",
            ],
        );
        for (i, b) in tel.breakdown.iter().enumerate() {
            let n = b.count.max(1);
            t.row(vec![
                adversary::class_name(i),
                b.count.to_string(),
                (b.inject / n).to_string(),
                (b.queue / n).to_string(),
                (b.wire / n).to_string(),
                (b.backoff / n).to_string(),
                (b.total / n).to_string(),
            ]);
        }
        println!("{t}");
        println!("(components telescope exactly: inject + queue + wire + backoff = total)\n");

        if heatmap {
            print!(
                "{}",
                memcomm_netsim::heatmap::render_grids(&scenario.topo, tel, out.cycles)
            );
            println!();
        }
    }

    if let Some(path) = json_path {
        let doc = adversary::scenario_json(&sopts, &scenario);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("cannot write scenario report to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote scenario report to {path}");
    }

    if let Some(path) = metrics_path {
        let series = out
            .telemetry
            .as_ref()
            .map_or_else(Vec::new, |t| t.named_series());
        let snapshot = obs.metrics_snapshot().expect("registry is enabled");
        let body = memcomm_obs::openmetrics::render(&snapshot, &series);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write OpenMetrics exposition to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote OpenMetrics exposition to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = SweepOptions::default();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut it = args.iter();
    let number = |it: &mut std::slice::Iter<String>, flag: &str| -> u64 {
        match it.next().map(|v| v.parse()) {
            Some(Ok(n)) => n,
            _ => usage_error(&format!("{flag} takes a number")),
        }
    };
    let fraction = |it: &mut std::slice::Iter<String>, flag: &str| -> f64 {
        match it.next().map(|v| v.parse::<f64>()) {
            Some(Ok(p)) if p.is_finite() && (0.0..=1.0).contains(&p) => p,
            _ => usage_error(&format!("{flag} takes a probability in [0, 1]")),
        }
    };
    let mut all = false;
    let mut fault_rate: Option<f64> = None;
    let mut engine_nodes: Option<usize> = None;
    let mut engine_shards: Option<usize> = None;
    let mut engine_transpose_n: Option<u64> = None;
    let mut engine_sor_n: Option<u64> = None;
    let mut bench_out: Option<String> = None;
    let mut bench_n: Option<usize> = None;
    let mut bench_nodes: Option<usize> = None;
    let mut bench_smoke = false;
    let mut adversary: Option<memcomm_netsim::AdversaryKind> = None;
    let mut adversary_bytes: Option<u64> = None;
    let mut flow_latency = false;
    let mut fault_seed: Option<u64> = None;
    let mut sample_every = 0u64;
    let mut heatmap = false;
    let mut metrics_out: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--figure1" | "--table1" | "--table2" | "--table3" | "--table4" | "--figure4"
            | "--figure7" | "--figure8" | "--table5" | "--section341" | "--table6"
            | "--calibration" | "--putget" | "--scaling" | "--accuracy" => {
                opts.sections
                    .insert(arg.trim_start_matches("--").to_string());
            }
            "--faults" => {
                let seed = number(&mut it, "--faults");
                opts.faults.seed = seed;
                fault_seed = Some(seed);
                opts.sections.insert("faults".to_string());
            }
            "--fault-rate" => fault_rate = Some(fraction(&mut it, "--fault-rate")),
            "--max-cycles" => opts.faults.max_cycles = Some(number(&mut it, "--max-cycles")),
            "--words" => opts.micro_words = number(&mut it, "--words"),
            "--exchange-words" => opts.exchange_words = number(&mut it, "--exchange-words"),
            "--jobs" => opts.jobs = number(&mut it, "--jobs") as usize,
            "--serial" => opts.jobs = 1,
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => usage_error("--json takes a path"),
            },
            "--metrics" => match it.next() {
                Some(path) => metrics_path = Some(path.clone()),
                None => usage_error("--metrics takes a path"),
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => usage_error("--trace-out takes a path"),
            },
            "--profile" => match it.next() {
                Some(path) => profile_path = Some(path.clone()),
                None => usage_error("--profile takes a path"),
            },
            "--phases" => opts.phases = true,
            "--engine" => match it.next().map(String::as_str) {
                Some("event") => {
                    opts.engine.get_or_insert_with(EngineSettings::default);
                }
                Some("analytic") => opts.engine = None,
                _ => usage_error("--engine takes 'analytic' or 'event'"),
            },
            "--nodes" => {
                engine_nodes = Some(number(&mut it, "--nodes") as usize);
            }
            "--shards" => {
                engine_shards = Some(number(&mut it, "--shards") as usize);
            }
            "--engine-transpose-n" => {
                engine_transpose_n = Some(number(&mut it, "--engine-transpose-n"));
            }
            "--engine-sor-n" => {
                engine_sor_n = Some(number(&mut it, "--engine-sor-n"));
            }
            "--bench-out" => match it.next() {
                Some(path) => bench_out = Some(path.clone()),
                None => usage_error("--bench-out takes a path"),
            },
            "--bench-n" => bench_n = Some(number(&mut it, "--bench-n") as usize),
            "--bench-nodes" => bench_nodes = Some(number(&mut it, "--bench-nodes") as usize),
            "--bench-smoke" => bench_smoke = true,
            "--adversary" => match it
                .next()
                .and_then(|v| memcomm_netsim::AdversaryKind::parse(v))
            {
                Some(kind) => adversary = Some(kind),
                None => usage_error(
                    "--adversary takes one of heavy-tail, incast, hotspot, bursty, retry-storm",
                ),
            },
            "--adversary-bytes" => {
                adversary_bytes = Some(number(&mut it, "--adversary-bytes"));
            }
            "--flow-latency" => flow_latency = true,
            "--sample-every" => sample_every = number(&mut it, "--sample-every"),
            "--heatmap" => heatmap = true,
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path.clone()),
                None => usage_error("--metrics-out takes a path"),
            },
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    // --adversary selects the resilience scenario instead of a sweep; it
    // reuses --nodes/--shards/--jobs/--faults/--fault-rate/--json with its
    // own defaults, so it runs before their sweep-mode validation.
    if heatmap && sample_every == 0 {
        usage_error("--heatmap requires --sample-every N");
    }
    if let Some(kind) = adversary {
        adversary_scenario(
            kind,
            adversary_bytes,
            engine_nodes,
            engine_shards,
            opts.jobs,
            fault_seed,
            fault_rate,
            flow_latency,
            sample_every,
            heatmap,
            json_path.as_deref(),
            metrics_out.as_deref(),
        );
        return;
    }
    if adversary_bytes.is_some() || flow_latency {
        usage_error("--adversary-bytes/--flow-latency require --adversary KIND");
    }
    if sample_every > 0 || heatmap {
        usage_error("--sample-every/--heatmap require --adversary KIND");
    }

    if opts.sections.contains("faults") {
        // A seeded plan defaults to a light injection rate; --fault-rate
        // overrides it (including back to zero for the determinism check).
        opts.faults.rate = fault_rate.unwrap_or(0.02);
        opts.faults.outage_rate = opts.faults.rate / 4.0;
    } else if fault_rate.is_some() {
        usage_error("--fault-rate requires --faults SEED");
    }
    if engine_nodes.is_some()
        || engine_shards.is_some()
        || engine_transpose_n.is_some()
        || engine_sor_n.is_some()
    {
        let Some(engine) = opts.engine.as_mut() else {
            usage_error(
                "--nodes/--shards/--engine-transpose-n/--engine-sor-n require --engine event",
            );
        };
        if let Some(n) = engine_nodes {
            engine.nodes = n;
        }
        if let Some(n) = engine_shards {
            engine.shards = n;
        }
        if let Some(n) = engine_transpose_n {
            engine.transpose_n = n;
        }
        if let Some(n) = engine_sor_n {
            engine.sor_n = n;
        }
    }
    if all {
        // --all wins over individual selections: run every section.
        opts.sections.clear();
    }

    // --bench-out selects the perf-regression suite instead of a sweep.
    if let Some(path) = bench_out {
        let mut popts = if bench_smoke {
            perfsuite::PerfOptions::smoke()
        } else {
            perfsuite::PerfOptions::default()
        };
        if let Some(n) = bench_n {
            popts.reps = n;
        }
        if let Some(n) = bench_nodes {
            popts.nodes = n;
        }
        eprintln!(
            "perfsuite: {} rep(s), {} nodes, micro {} / exchange {} words",
            popts.reps.max(1),
            popts.nodes,
            popts.micro_words,
            popts.exchange_words
        );
        match perfsuite::run(&popts) {
            Ok(doc) => {
                perfsuite::validate(&doc).expect("perfsuite output conforms to its own schema");
                if let Err(e) = std::fs::write(&path, doc.render()) {
                    eprintln!("cannot write bench report to {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote bench report to {path}");
                return;
            }
            Err(e) => {
                eprintln!("perfsuite failed: {e}");
                std::process::exit(1);
            }
        }
    } else if bench_n.is_some() || bench_nodes.is_some() || bench_smoke {
        usage_error("--bench-n/--bench-nodes/--bench-smoke require --bench-out PATH");
    }

    println!("memcomm reproduction of Stricker & Gross, ISCA 1995");
    println!(
        "(microbenchmarks: {} words; exchanges: {} words; {} worker(s); all rates MB/s)\n",
        opts.micro_words,
        opts.exchange_words,
        opts.jobs.max(1)
    );

    // One observability handle for the whole run: registry-only by default,
    // trace-recording when an export was requested. The sweep adopts it, so
    // the histograms and spans it accumulates are ours to export afterwards.
    let obs = Obs::new(trace_path.is_some() || profile_path.is_some());
    let _obs_guard = obs.install();

    let (report, metrics) = runner::run_sweep(&opts);

    if !report.calibration.is_empty() {
        for machine in ["Cray T3D", "Intel Paragon"] {
            let rows: Vec<_> = report
                .calibration
                .iter()
                .filter(|r| r.machine == machine)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let mut t = TextTable::new(
                &format!("Calibration — {machine} (simulated vs paper basic rates)"),
                &["transfer", "simulated", "paper", "ratio"],
            );
            let mut log_err = 0.0;
            for r in &rows {
                t.row(vec![
                    r.transfer.clone(),
                    TextTable::mbps(r.simulated),
                    TextTable::mbps(r.paper),
                    format!("{:.2}", r.ratio),
                ]);
                log_err += r.ratio.ln().abs();
            }
            println!("{t}");
            println!("mean log error {:.3}\n", log_err / rows.len() as f64);
        }
    }

    for s in &report.figure1 {
        let mut t = TextTable::new(
            &format!(
                "Figure 1 — library throughput vs message size, {}",
                s.machine
            ),
            &["words", "PVM", "low-level"],
        );
        for p in &s.rows {
            t.row(vec![
                p.message_words.to_string(),
                TextTable::mbps(p.pvm),
                TextTable::mbps(p.low_level),
            ]);
        }
        println!("{t}");
    }

    for (title, series) in [
        ("Table 1 — local memory-to-memory copies", &report.table1),
        ("Table 2 — send transfers", &report.table2),
        ("Table 3 — receive transfers", &report.table3),
    ] {
        for s in series {
            let mut t = TextTable::new(
                &format!("{title}, {}", s.machine),
                &["transfer", "simulated", "paper"],
            );
            for r in &s.rows {
                t.row(vec![
                    r.transfer.clone(),
                    TextTable::mbps(r.simulated),
                    TextTable::opt_mbps(r.paper),
                ]);
            }
            println!("{t}");
        }
    }

    for s in &report.figure4 {
        let mut t = TextTable::new(
            &format!("Figure 4 — strided local copies, {}", s.machine),
            &["stride", "sC1 (loads)", "1Cs (stores)"],
        );
        for p in &s.rows {
            t.row(vec![
                p.stride.to_string(),
                TextTable::mbps(p.loads),
                TextTable::mbps(p.stores),
            ]);
        }
        println!("{t}");
    }

    for s in &report.table4 {
        let mut t = TextTable::new(
            &format!("Table 4 — network bandwidth vs congestion, {}", s.machine),
            &["congestion", "Nd", "Nd paper", "Nadp", "Nadp paper"],
        );
        for r in &s.rows {
            t.row(vec![
                format!("{:.0}", r.congestion),
                TextTable::mbps(r.data_only),
                TextTable::mbps(r.paper_data_only),
                TextTable::mbps(r.addr_data),
                TextTable::mbps(r.paper_addr_data),
            ]);
        }
        println!("{t}");
    }

    for s in &report.section5 {
        let figure = if s.machine == "Cray T3D" {
            "Figure 7"
        } else {
            "Figure 8"
        };
        let mut t = TextTable::new(
            &format!(
                "{figure} / Section 5 — buffer packing vs chained, {}",
                s.machine
            ),
            &[
                "op", "sim bp", "model bp", "paper bp", "sim ch", "model ch", "paper ch",
            ],
        );
        for r in &s.rows {
            t.row(vec![
                r.op.clone(),
                TextTable::mbps(r.sim_bp),
                TextTable::mbps(r.model_bp),
                TextTable::opt_mbps(r.paper_model_bp),
                TextTable::mbps(r.sim_chained),
                TextTable::mbps(r.model_chained),
                TextTable::opt_mbps(r.paper_model_chained),
            ]);
        }
        println!("{t}");
    }

    if !report.table5.is_empty() {
        let mut t = TextTable::new(
            "Table 5 — strided loads vs strided stores",
            &["op", "machine", "sim bp", "paper bp", "sim ch", "paper ch"],
        );
        for r in &report.table5 {
            t.row(vec![
                r.op.clone(),
                r.machine.clone(),
                TextTable::mbps(r.sim_bp),
                TextTable::mbps(r.paper_measured_bp),
                TextTable::mbps(r.sim_chained),
                TextTable::mbps(r.paper_measured_chained),
            ]);
        }
        println!("{t}");
    }

    if let Some(s) = &report.section341 {
        println!("### Section 3.4.1 — |1Q1024| on the T3D");
        println!(
            "model estimate {:.1} (paper {:.1}); simulated {:.1} (paper measured {:.1})\n",
            s.model_estimate, s.paper_estimate, s.simulated, s.paper_measured
        );
    }

    if !report.table6.is_empty() {
        let mut t = TextTable::new(
            "Table 6 — application kernels on the 64-node T3D (MB/s per node)",
            &[
                "kernel",
                "sim bp",
                "paper bp",
                "sim ch",
                "paper ch",
                "model ch",
                "paper model",
                "sim PVM",
                "paper PVM3",
            ],
        );
        for r in &report.table6 {
            t.row(vec![
                r.kernel.clone(),
                TextTable::mbps(r.sim_bp),
                TextTable::mbps(r.paper_bp),
                TextTable::mbps(r.sim_chained),
                TextTable::mbps(r.paper_chained),
                TextTable::mbps(r.model_chained),
                TextTable::mbps(r.paper_model_chained),
                TextTable::mbps(r.sim_pvm),
                TextTable::mbps(r.paper_pvm3),
            ]);
        }
        println!("{t}");
    }

    for s in &report.put_vs_get {
        let mut t = TextTable::new(
            &format!(
                "Extension — deposits (put) vs withdrawals (get), {}",
                s.machine
            ),
            &["op", "put (chained)", "get"],
        );
        for r in &s.rows {
            t.row(vec![
                r.op.clone(),
                TextTable::mbps(r.put),
                TextTable::mbps(r.get),
            ]);
        }
        println!("{t}");
    }

    for s in &report.scaling {
        let mut t = TextTable::new(
            "Extension — transpose throughput vs problem size (T3D, 64 nodes)",
            &[
                "matrix n",
                "patch words",
                "PVM",
                "buffer packing",
                "chained",
            ],
        );
        for r in &s.rows {
            t.row(vec![
                r.n.to_string(),
                r.patch_words.to_string(),
                TextTable::mbps(r.pvm),
                TextTable::mbps(r.buffer_packing),
                TextTable::mbps(r.chained),
            ]);
        }
        println!("{t}");
    }

    for s in &report.model_accuracy {
        let mut t = TextTable::new(
            &format!("Extension — model accuracy grid, {}", s.machine),
            &["op", "style", "model", "simulated", "ratio"],
        );
        let mut log_err = 0.0;
        for r in &s.rows {
            t.row(vec![
                r.op.clone(),
                r.style.clone(),
                TextTable::mbps(r.model),
                TextTable::mbps(r.simulated),
                format!("{:.2}", r.ratio),
            ]);
            log_err += r.ratio.ln().abs();
        }
        println!("{t}");
        if !s.rows.is_empty() {
            println!("mean |log ratio| {:.3}\n", log_err / s.rows.len() as f64);
        }
    }

    for s in &report.faults {
        let mut t = TextTable::new(
            &format!(
                "Robustness — resilient transfers under injected faults, {}",
                s.machine
            ),
            &[
                "op", "style", "MB/s", "frames", "retrans", "degraded", "status",
            ],
        );
        for r in &s.rows {
            let status = match (&r.error, r.verified) {
                (Some(e), _) => format!("error: {e}"),
                (None, true) => "ok".to_string(),
                (None, false) => "corrupt".to_string(),
            };
            t.row(vec![
                r.op.clone(),
                r.style.clone(),
                r.mbps.map_or_else(|| "-".to_string(), TextTable::mbps),
                r.frames_sent.to_string(),
                r.retransmissions.to_string(),
                if r.degraded { "yes" } else { "no" }.to_string(),
                status,
            ]);
        }
        println!("{t}");
    }

    for s in &report.phases {
        let mut t = TextTable::new(
            &format!("Observability — per-stage attribution, {}", s.machine),
            &[
                "op", "style", "cycles", "pack", "send", "wire", "deposit", "unpack", "attr err",
            ],
        );
        for r in &s.rows {
            let cell = |i: usize| format!("{}/{:.0}", r.sim[i], r.model[i]);
            t.row(vec![
                r.op.clone(),
                r.style.clone(),
                r.end_cycle.to_string(),
                cell(0),
                cell(1),
                cell(2),
                cell(3),
                cell(4),
                format!("{:.2}", r.attribution_error),
            ]);
        }
        println!("{t}");
        println!("(stage cells: simulated cycles / model-predicted cycles)\n");
    }

    if !report.engine_table6.is_empty() {
        let mut t = TextTable::new(
            "Event engine — Table 6 kernels executed on the simulated network",
            &[
                "kernel",
                "machine",
                "nodes",
                "engine c",
                "analytic c",
                "engine ch",
                "analytic ch",
                "ratio",
                "digest",
            ],
        );
        for r in &report.engine_table6 {
            t.row(vec![
                r.kernel.clone(),
                r.machine.clone(),
                r.nodes.to_string(),
                format!("{:.2}", r.engine_congestion),
                format!("{:.2}", r.analytic_congestion),
                TextTable::mbps(r.engine_chained),
                TextTable::mbps(r.analytic_chained),
                format!("{:.2}", r.ratio),
                r.digest.clone(),
            ]);
        }
        println!("{t}");
        println!("(c: congestion factor; ch: chained MB/s per node priced at that factor)\n");
    }

    if metrics_path.is_some() && !metrics.histograms.is_empty() {
        let mut t = TextTable::new(
            "Run histograms — per-run registry (cycles or counts)",
            &["metric", "count", "mean", "p50", "p99", "max"],
        );
        for (name, h) in &metrics.histograms {
            t.row(vec![
                name.clone(),
                h.count.to_string(),
                format!("{:.1}", h.mean),
                h.p50.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
        println!("{t}");
    }

    eprintln!("sweep: {}", metrics.summary());

    let write = |path: &str, body: String, what: &str| {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {what} to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {what} to {path}");
    };
    if let Some(path) = json_path {
        write(&path, report.to_json().render(), "machine-readable report");
    }
    if let Some(path) = metrics_path {
        write(&path, metrics.to_json().render(), "run metrics");
    }
    if let Some(path) = metrics_out {
        let snapshot = obs.metrics_snapshot().expect("registry is enabled");
        let body = memcomm_obs::openmetrics::render(&snapshot, &[]);
        write(&path, body, "OpenMetrics exposition");
    }
    if let Some(path) = trace_path {
        if obs.trace_dropped() > 0 {
            eprintln!(
                "trace buffer overflowed: {} events dropped",
                obs.trace_dropped()
            );
        }
        match obs.chrome_trace() {
            Some(body) => write(&path, body, "chrome trace"),
            None => eprintln!("tracing disabled; no trace written to {path}"),
        }
    }
    if let Some(path) = profile_path {
        match obs.flamegraph() {
            Some(body) => write(&path, body, "profile"),
            None => eprintln!("tracing disabled; no profile written to {path}"),
        }
    }

    let failed: Vec<_> = report.sections.iter().filter(|s| !s.ok).collect();
    if !failed.is_empty() {
        for s in &failed {
            eprintln!(
                "section {} failed: {}",
                s.name,
                s.error.as_deref().unwrap_or("unknown error")
            );
        }
        eprintln!(
            "{} of {} sections failed",
            failed.len(),
            report.sections.len()
        );
        std::process::exit(1);
    }
}
