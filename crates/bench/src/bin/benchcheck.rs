//! `benchcheck` — validates a perfsuite report against its canonical
//! schema.
//!
//! ```text
//! benchcheck FILE [--normalize]
//! ```
//!
//! Parses `FILE` (written by `repro --bench-out`), checks it against the
//! schema in [`memcomm_bench::perfsuite`], and exits 0 when it conforms.
//! `--normalize` additionally prints the normalized report — every number
//! in every bench's `timing` object zeroed — to stdout, so CI can diff the
//! deterministic structure against a golden file while ignoring wall
//! times. Any violation prints a description to stderr and exits 1.

use memcomm_bench::perfsuite;
use memcomm_util::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut normalize = false;
    for arg in &args {
        match arg.as_str() {
            "--normalize" => normalize = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("unknown argument {other}; usage: benchcheck FILE [--normalize]");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: benchcheck FILE [--normalize]");
        std::process::exit(2);
    };
    let body = match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match Json::parse(&body) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = perfsuite::validate(&doc) {
        eprintln!("{path} violates the perfsuite schema: {e}");
        std::process::exit(1);
    }
    let benches = doc
        .get("benches")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    if normalize {
        print!("{}", perfsuite::normalize(&doc).render());
        eprintln!("{path} ok ({benches} benches, normalized to stdout)");
    } else {
        println!("{path} ok ({benches} benches)");
    }
}
