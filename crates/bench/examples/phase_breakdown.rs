//! Prints the measured vs model-predicted stage split for buffer packing
//! vs chained transfers across contiguous (`1`), strided (`n`) and indexed
//! (`ω`) access patterns on both machines.
//!
//! ```text
//! cargo run -p memcomm-bench --example phase_breakdown
//! ```

use memcomm_bench::phases::{phase_breakdown, PhaseRow};
use memcomm_machines::{microbench, Machine};
use memcomm_memsim::SimResult;

const MICRO_WORDS: u64 = 4 * 1024;
const EXCHANGE_WORDS: u64 = 2 * 1024;

fn main() -> SimResult<()> {
    for machine in [Machine::t3d(), Machine::paragon()] {
        let rates = microbench::measure_table(&machine, MICRO_WORDS)?;
        let rows = phase_breakdown(&machine, &rates, EXCHANGE_WORDS)?;
        println!(
            "## {} — {} words per exchange (stage shares, simulated vs model)\n",
            machine.name, EXCHANGE_WORDS
        );
        for row in &rows {
            print_row(row);
        }
        println!();
    }
    Ok(())
}

fn print_row(row: &PhaseRow) {
    let sim_total: f64 = row.sim.iter().map(|&c| c as f64).sum();
    let model_total: f64 = row.model.iter().sum();
    println!(
        "{:>5} {:<7}  {:>9} cycles  attribution error {:>5.1}%",
        row.op,
        row.style,
        row.end_cycle,
        row.attribution_error * 100.0
    );
    for (i, stage) in PhaseRow::STAGES.iter().enumerate() {
        if row.sim[i] == 0 && row.model[i] == 0.0 {
            continue;
        }
        let sim_share = 100.0 * row.sim[i] as f64 / sim_total.max(1.0);
        let model_share = if model_total > 0.0 {
            100.0 * row.model[i] / model_total
        } else {
            0.0
        };
        println!(
            "        {:<8} sim {:>8} cyc ({:>5.1}%)   model {:>9.0} cyc ({:>5.1}%)",
            stage, row.sim[i], sim_share, row.model[i], model_share
        );
    }
}
