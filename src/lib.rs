//! # memcomm — memory-system-aware communication for parallel computers
//!
//! A full reproduction of *Optimizing Memory System Performance for
//! Communication in Parallel Computers* (Stricker & Gross, ISCA 1995) as a
//! Rust workspace. This facade crate re-exports the public API of every
//! subsystem:
//!
//! * [`model`] — the copy-transfer model: access patterns, basic transfers,
//!   composition algebra, throughput estimation;
//! * [`memsim`] — discrete-event node memory-system simulator (DRAM, cache,
//!   write-back queue, read-ahead, pipelined loads, bus, DMA, deposit
//!   engine, NIC);
//! * [`netsim`] — interconnect simulator (mesh/torus topology, routing,
//!   traffic patterns, congestion analysis, link model);
//! * [`machines`] — Cray T3D and Intel Paragon configurations, the
//!   microbenchmark harness, and the paper's reference numbers;
//! * [`commops`] — end-to-end communication operations (buffer-packing and
//!   chained transfers, PVM-style and low-level libraries) co-simulated over
//!   two nodes;
//! * [`kernels`] — application kernels (2D-FFT transpose, FEM boundary
//!   exchange, SOR) and the compiler view (HPF distributions,
//!   redistribution schedules).
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! system inventory and experiment index.

#![forbid(unsafe_code)]

pub use memcomm_commops as commops;
pub use memcomm_kernels as kernels;
pub use memcomm_machines as machines;
pub use memcomm_memsim as memsim;
pub use memcomm_model as model;
pub use memcomm_netsim as netsim;
