//! Quickstart: the copy-transfer model in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Describe a communication operation as composed basic transfers.
//! 2. Estimate its throughput from a machine's measured basic rates.
//! 3. Run the same operation end to end on the simulated machine.
//! 4. Compare — the paper's whole methodology in miniature.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::machines::{microbench, Machine};
use memcomm::model::{
    buffer_packing_expr, chained_expr, AccessPattern, BufferPackingPlan, ChainedPlan,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t3d = Machine::t3d();
    println!("machine: {} ({})", t3d.name, t3d.topology);

    // Step 1: the operation. A compiler wants to move data that is
    // contiguous at the source into a stride-64 destination: 1Q64.
    let x = AccessPattern::Contiguous;
    let y = AccessPattern::strided(64)?;
    let bp = buffer_packing_expr(x, y, BufferPackingPlan::default())?;
    let ch = chained_expr(x, y, ChainedPlan::default())?;
    println!("\nbuffer packing: 1Q64  = {bp}");
    println!("chained:        1Q'64 = {ch}");

    // Step 2: measure the machine's basic transfers (Tables 1-4) on the
    // simulator and estimate both implementations.
    let rates = microbench::measure_table(&t3d, 8192)?;
    println!(
        "\nmodel estimates from {} simulated basic rates:",
        rates.len()
    );
    println!("  |1Q64|  = {}", bp.estimate(&rates)?);
    println!("  |1Q'64| = {}", ch.estimate(&rates)?);

    // Step 3: run both end to end — two simulated nodes, real data,
    // symmetric exchange at the machine's representative congestion.
    let cfg = ExchangeConfig {
        words: 8192,
        ..ExchangeConfig::default()
    };
    let bp_run = run_exchange(&t3d, x, y, Style::BufferPacking, &cfg)?;
    let ch_run = run_exchange(&t3d, x, y, Style::Chained, &cfg)?;
    assert!(
        bp_run.verified && ch_run.verified,
        "transfers moved real data"
    );
    println!("\nend-to-end co-simulation (verified):");
    println!("  buffer packing: {}", bp_run.per_node(t3d.clock()));
    println!("  chained:        {}", ch_run.per_node(t3d.clock()));

    // Step 4: the paper's conclusion, reproduced.
    println!(
        "\nchaining wins by {:.1}x for this pattern — the paper's headline result.",
        ch_run.per_node(t3d.clock()).as_mbps() / bp_run.per_node(t3d.clock()).as_mbps()
    );
    Ok(())
}
