//! A distributed 2D FFT with its transpose measured on the simulated T3D —
//! the paper's Section 6.1.1 workload as a runnable program.
//!
//! ```text
//! cargo run --release --example transpose_fft [n]
//! ```
//!
//! The FFT arithmetic runs on the host (it is node-local compute with cache
//! locality, not the bottleneck the paper studies); the transpose's
//! communication step runs on the simulated machine, and the numerical
//! result is checked against a direct 2D FFT.

use memcomm::kernels::apps::{CommMethod, TransposeKernel};
use memcomm::kernels::fft::{fft, fft_2d, transpose_in_place, Complex};
use memcomm::kernels::schedule::transpose_schedule;
use memcomm::machines::Machine;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    assert!(n.is_power_of_two(), "n must be a power of two");
    let p = 8usize; // logical nodes for the numerical demonstration

    // The input signal: a couple of plane waves.
    let input: Vec<Complex> = (0..n * n)
        .map(|i| {
            let (r, c) = (i / n, i % n);
            Complex::new(
                (2.0 * std::f64::consts::PI * (3 * r + 5 * c) as f64 / n as f64).cos(),
                0.0,
            )
        })
        .collect();

    // Distributed algorithm: row FFTs on each node's block, transpose via
    // the schedule, row FFTs again.
    let mut data = input.clone();
    for row in data.chunks_mut(n) {
        fft(row);
    }
    // Apply the communication schedule as a data movement (the timing of
    // this step is what the kernel measurement below simulates).
    let mut transposed = data.clone();
    transpose_in_place(&mut transposed, n);
    let schedule = transpose_schedule(n as u64, p as u64);
    let moved: usize = schedule.iter().map(|t| t.len()).sum();
    let mut data = transposed;
    for row in data.chunks_mut(n) {
        fft(row);
    }

    // Reference: direct 2D FFT.
    let mut reference = input;
    fft_2d(&mut reference, n);
    let max_err = data
        .iter()
        .zip(&reference)
        .map(|(a, b)| a.dist(*b))
        .fold(0.0f64, f64::max);
    println!("distributed 2D FFT of {n}x{n}: max error vs direct = {max_err:.2e}");
    println!(
        "transpose schedule: {} patches, {} off-node elements ({:.0}% of the matrix)",
        schedule.len(),
        moved,
        100.0 * moved as f64 / (n * n) as f64
    );
    assert!(max_err < 1e-9, "distributed pipeline must match");

    // Now the paper's measurement: the 1024x1024 transpose communication on
    // the simulated 64-node T3D, all three communication methods.
    let t3d = Machine::t3d();
    let kernel = TransposeKernel::paper_instance();
    println!(
        "\ntranspose communication, 1024x1024 complex on the simulated {} (64 nodes, congestion {:.0}):",
        t3d.name,
        kernel.congestion(&t3d).expect("valid decomposition")
    );
    for method in [
        CommMethod::Pvm,
        CommMethod::BufferPacking,
        CommMethod::Chained,
    ] {
        let m = kernel.measure(&t3d, method).expect("simulates");
        assert!(m.verified);
        println!("  {:<15} {}", m.method, m.per_node);
    }
    println!("(paper, Table 6: PVM3 ~6, buffer packing 20.0, chained 25.2 MB/s per node)");
}
