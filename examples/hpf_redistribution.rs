//! The compiler view (Section 2.1): an HPF-style array redistribution,
//! from distribution directives to measured communication.
//!
//! ```text
//! cargo run --release --example hpf_redistribution
//! ```
//!
//! A compiler redistributing `A(BLOCK)` to `A(CYCLIC)` derives, for every
//! node pair, which local elements travel and with what access pattern;
//! the copy-transfer model then decides how to move them. This example
//! computes the schedule, classifies each transfer, and measures a
//! representative pairwise transfer on the simulated T3D in both styles.

use memcomm::commops::{run_exchange_specs, ExchangeConfig, Style, WalkSpec};
use memcomm::kernels::distribution::Distribution;
use memcomm::kernels::schedule::redistribution;
use memcomm::machines::Machine;

fn main() {
    let n = 1 << 16; // 64k elements
    let p = 8;
    let from = Distribution::Block;
    let to = Distribution::BlockCyclic(4);
    let schedule = redistribution(n, p, from, to);

    println!("redistribute A({from}) -> A({to}), n = {n}, {p} nodes");
    println!(
        "schedule: {} node-pair transfers, {} elements move ({:.0}% of the array)\n",
        schedule.len(),
        schedule.iter().map(|t| t.len()).sum::<usize>(),
        100.0 * schedule.iter().map(|t| t.len()).sum::<usize>() as f64 / n as f64
    );

    // The compiler's question, per transfer: what pattern does each side
    // see, and which implementation style wins?
    let spec = schedule
        .iter()
        .find(|t| t.from == 0 && t.to == 1)
        .expect("node 0 sends to node 1");
    let (x, y) = spec.patterns();
    println!(
        "transfer 0 -> 1: {} elements, read pattern {x}, write pattern {y}",
        spec.len()
    );

    let t3d = Machine::t3d();
    let cfg = ExchangeConfig {
        words: spec.len() as u64,
        ..ExchangeConfig::default()
    };
    let to_spec = |locals: &[u64]| {
        WalkSpec::Offsets(locals.iter().map(|&l| u32::try_from(l).unwrap()).collect())
    };
    let src = to_spec(&spec.src_locals);
    let dst = to_spec(&spec.dst_locals);
    let bp = run_exchange_specs(&t3d, &src, &dst, Style::BufferPacking, &cfg).expect("simulates");
    let ch = run_exchange_specs(&t3d, &src, &dst, Style::Chained, &cfg).expect("simulates");
    assert!(
        bp.verified && ch.verified,
        "redistribution moved wrong elements"
    );
    println!(
        "on the simulated {}: buffer packing {}, chained {} ({:.2}x)",
        t3d.name,
        bp.per_node(t3d.clock()),
        ch.per_node(t3d.clock()),
        ch.per_node(t3d.clock()).as_mbps() / bp.per_node(t3d.clock()).as_mbps()
    );
    println!(
        "\nThe compiler should emit a chained transfer here — and the model\n\
         could have told it so without running anything: that is the paper."
    );
}
