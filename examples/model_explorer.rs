//! Interactive-ish model explorer: estimate any `xQy` on either simulated
//! machine from the command line.
//!
//! ```text
//! cargo run --release --example model_explorer -- [t3d|paragon] [xQy ...]
//! cargo run --release --example model_explorer -- t3d 1Q1 8Q8 wQ64
//! ```
//!
//! For each operation it prints the buffer-packing and chained formulas,
//! their model estimates from the machine's simulated rate table, and the
//! end-to-end co-simulated rates.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::machines::{microbench, Machine};
use memcomm::model::{
    buffer_packing_expr, chained_expr, AccessPattern, BufferPackingPlan, ChainedPlan,
    ReceiveEngine, SendEngine,
};

fn parse_pattern(s: &str) -> Result<AccessPattern, String> {
    match s {
        "1" => Ok(AccessPattern::Contiguous),
        "w" => Ok(AccessPattern::Indexed),
        n => n
            .parse::<u32>()
            .map_err(|_| format!("bad pattern {s:?}: use 1, w, or a stride"))
            .and_then(|v| AccessPattern::strided(v).map_err(|e| e.to_string())),
    }
}

fn main() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let machine = match args.first().map(String::as_str) {
        Some("paragon") => {
            args.remove(0);
            Machine::paragon()
        }
        Some("t3d") => {
            args.remove(0);
            Machine::t3d()
        }
        _ => Machine::t3d(),
    };
    if args.is_empty() {
        args = vec!["1Q1".into(), "1Q64".into(), "64Q1".into(), "wQw".into()];
    }

    println!(
        "measuring basic transfers of the simulated {} ...",
        machine.name
    );
    let rates = microbench::measure_table(&machine, 8192).map_err(|e| e.to_string())?;
    let bp_plan = BufferPackingPlan {
        send: if machine.caps.fetch_send {
            SendEngine::Dma
        } else {
            SendEngine::Processor
        },
        ..BufferPackingPlan::default()
    };
    let ch_plan = ChainedPlan {
        recv: if machine.caps.deposit_noncontiguous {
            ReceiveEngine::Deposit
        } else {
            ReceiveEngine::Processor
        },
    };

    for op in &args {
        let (xs, ys) = op
            .split_once('Q')
            .ok_or_else(|| format!("operations are written xQy, got {op:?}"))?;
        let x = parse_pattern(xs)?;
        let y = parse_pattern(ys)?;
        let bp = buffer_packing_expr(x, y, bp_plan).map_err(|e| e.to_string())?;
        let ch = chained_expr(x, y, ch_plan).map_err(|e| e.to_string())?;
        println!("\n{op} on {}:", machine.name);
        println!("  buffer packing  {bp}");
        println!("  chained         {ch}");
        let bp_est = bp.estimate(&rates).map_err(|e| e.to_string())?;
        let ch_est = ch.estimate(&rates).map_err(|e| e.to_string())?;
        let cfg = ExchangeConfig {
            words: 4096,
            ..ExchangeConfig::default()
        };
        let bp_sim =
            run_exchange(&machine, x, y, Style::BufferPacking, &cfg).map_err(|e| e.to_string())?;
        let ch_sim =
            run_exchange(&machine, x, y, Style::Chained, &cfg).map_err(|e| e.to_string())?;
        println!("  model:      bp {bp_est}, chained {ch_est}");
        println!(
            "  simulated:  bp {}, chained {} (verified: {})",
            bp_sim.per_node(machine.clock()),
            ch_sim.per_node(machine.clock()),
            bp_sim.verified && ch_sim.verified
        );
    }
    Ok(())
}
