//! The SOR kernel (Section 6.1.3): a red-black successive over-relaxation
//! solve with its halo-exchange communication measured on the simulated
//! T3D.
//!
//! ```text
//! cargo run --release --example sor_stencil
//! ```

use memcomm::kernels::apps::{CommMethod, SorKernel};
use memcomm::machines::Machine;

/// One red-black SOR sweep of the 5-point Laplace stencil on an n×n grid
/// with Dirichlet boundary 0 except the top edge at 1.
fn sor_sweep(grid: &mut [Vec<f64>], omega: f64, color: usize) -> f64 {
    let n = grid.len();
    let mut max_delta = 0.0f64;
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            if (i + j) % 2 != color {
                continue;
            }
            let gs = 0.25 * (grid[i - 1][j] + grid[i + 1][j] + grid[i][j - 1] + grid[i][j + 1]);
            let new = grid[i][j] + omega * (gs - grid[i][j]);
            max_delta = max_delta.max((new - grid[i][j]).abs());
            grid[i][j] = new;
        }
    }
    max_delta
}

fn main() {
    // Solve the model problem to show the kernel is a real solver.
    let n = 64;
    let mut grid = vec![vec![0.0f64; n]; n];
    for cell in &mut grid[0] {
        *cell = 1.0;
    }
    let omega = 2.0 / (1.0 + (std::f64::consts::PI / n as f64).sin());
    let mut iterations = 0;
    loop {
        let d = sor_sweep(&mut grid, omega, 0).max(sor_sweep(&mut grid, omega, 1));
        iterations += 1;
        if d < 1e-8 || iterations > 10_000 {
            break;
        }
    }
    let center = grid[n / 2][n / 2];
    println!(
        "SOR (omega={omega:.3}) converged in {iterations} iterations; u(center) = {center:.4}"
    );
    assert!(iterations < 600, "optimal-omega SOR converges fast");
    assert!(
        (center - 0.25).abs() < 0.02,
        "harmonic center value near 1/4"
    );

    // Every iteration of the distributed version exchanges overlap rows
    // with the shift neighbours; the paper measures that step per node.
    let t3d = Machine::t3d();
    let kernel = SorKernel::paper_instance();
    println!(
        "\nhalo exchange (rows of {} words) on the simulated {} (congestion {:.0}):",
        kernel.n,
        t3d.name,
        kernel.congestion(&t3d).expect("valid decomposition")
    );
    for method in [
        CommMethod::Pvm,
        CommMethod::BufferPacking,
        CommMethod::Chained,
    ] {
        let m = kernel.measure(&t3d, method).expect("simulates");
        assert!(m.verified);
        println!("  {:<15} {}", m.method, m.per_node);
    }
    println!(
        "(paper, Table 6: PVM3 ~25, buffer packing 26.2, chained 27.9 MB/s per node — \
         contiguous halo rows mean chaining cannot help much, and fixed costs dominate)"
    );
}
