//! Design-space exploration: the paper's advice to hardware designers,
//! made executable.
//!
//! ```text
//! cargo run --release --example design_space
//! ```
//!
//! The paper closes with guidance for machine designers: "improving the
//! network performance beyond what can be supported by the memory system
//! does not increase overall performance", and deposit engines "must take
//! into account that not all transfers are contiguous blocks". This example
//! takes the calibrated T3D and turns those knobs:
//!
//! 1. sweep the wire speed and watch the chained strided transfer saturate
//!    at the memory system's limit;
//! 2. sweep the deposit engine's per-word cost and watch the same transfer
//!    respond immediately — because *that* is the bottleneck.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::machines::Machine;
use memcomm::model::AccessPattern;

fn rate(machine: &Machine, cfg: &ExchangeConfig) -> f64 {
    let r = run_exchange(
        machine,
        AccessPattern::Contiguous,
        AccessPattern::strided(64).unwrap(),
        Style::Chained,
        cfg,
    )
    .expect("simulates");
    assert!(r.verified);
    r.per_node(machine.clock()).as_mbps()
}

fn main() {
    let cfg = ExchangeConfig {
        words: 4096,
        ..ExchangeConfig::default()
    };

    println!("chained 1Q'64 on T3D variants (MB/s per node)\n");
    println!("1. Faster wires do not help a memory-bound transfer:");
    let base_wire = Machine::t3d().link_raw.bytes_per_cycle;
    let mut last = 0.0;
    for factor in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut m = Machine::t3d();
        m.link_raw.bytes_per_cycle = base_wire * factor;
        let r = rate(&m, &cfg);
        println!("   wire x{factor:<4} -> {r:>6.1}");
        last = r;
    }
    let saturated = last;

    println!("\n2. A faster deposit engine moves the actual bottleneck:");
    for word_cycles in [6, 3, 1] {
        let mut m = Machine::t3d();
        m.link_raw.bytes_per_cycle = base_wire * 8.0; // wire out of the way
        m.node.deposit.word_cycles = word_cycles;
        // Faster engine-side DRAM writes too (a better memory system).
        if word_cycles == 1 {
            m.node.path.dram.write_miss_cycles = 10;
            m.node.path.dram.posted_write_miss_cycles = 8;
        }
        let r = rate(&m, &cfg);
        println!("   deposit {word_cycles} cyc/word -> {r:>6.1}");
    }

    println!(
        "\nWith the stock memory system, an 8x faster network bought almost\n\
         nothing beyond {saturated:.0} MB/s; speeding the deposit path moved the\n\
         number immediately. \"The parallelism exploited in applications is no\n\
         panacea and cannot cover up inadequate memory system performance.\""
    );
}
