//! The FEM boundary exchange (Section 6.1.2) on a synthetic partitioned
//! mesh, with a Jacobi relaxation running over it to show the kernel in a
//! real solver loop.
//!
//! ```text
//! cargo run --release --example fem_exchange
//! ```

use memcomm::kernels::apps::{CommMethod, FemKernel};
use memcomm::kernels::mesh::PartitionedMesh;
use memcomm::machines::Machine;

fn main() {
    let mesh = PartitionedMesh::synthetic_valley([48, 48, 48], [4, 4, 4], 1995);
    println!(
        "synthetic valley mesh: {} points in {} partitions of {} points",
        mesh.points_per_partition * mesh.partitions(),
        mesh.partitions(),
        mesh.points_per_partition
    );
    println!(
        "interfaces: {} of mean {:.0} points; boundary fraction of partition 21: {:.1}%",
        mesh.interfaces.len(),
        mesh.mean_interface_points(),
        100.0 * mesh.boundary_fraction(21)
    );

    // A toy Jacobi relaxation over the interface graph to demonstrate that
    // the index arrays drive a real computation: each partition holds one
    // value per point; interface points average with their twins.
    let p = mesh.partitions();
    let mut values: Vec<Vec<f64>> = (0..p)
        .map(|k| {
            (0..mesh.points_per_partition)
                .map(|i| (k * 31 + i) as f64 % 97.0)
                .collect()
        })
        .collect();
    for _ in 0..60 {
        // Consensus sweep: every interface point averages with all of its
        // twins (a point on a box edge sits on several interfaces).
        let mut sum = values.clone();
        let mut count: Vec<Vec<u32>> = (0..p).map(|_| vec![1; mesh.points_per_partition]).collect();
        for iface in &mesh.interfaces {
            for (la, lb) in iface.a_locals.iter().zip(&iface.b_locals) {
                sum[iface.a][*la as usize] += values[iface.b][*lb as usize];
                count[iface.a][*la as usize] += 1;
                sum[iface.b][*lb as usize] += values[iface.a][*la as usize];
                count[iface.b][*lb as usize] += 1;
            }
        }
        for k in 0..p {
            for i in 0..mesh.points_per_partition {
                values[k][i] = sum[k][i] / f64::from(count[k][i]);
            }
        }
    }
    let residual: f64 = mesh
        .interfaces
        .iter()
        .flat_map(|i| {
            i.a_locals
                .iter()
                .zip(&i.b_locals)
                .map(|(la, lb)| (values[i.a][*la as usize] - values[i.b][*lb as usize]).abs())
        })
        .fold(0.0, f64::max);
    println!("after 60 consensus sweeps the max interface mismatch is {residual:.2e}");
    assert!(residual < 1e-6, "consensus iteration converges");

    // The measured kernel: indexed exchange on the simulated T3D.
    let t3d = Machine::t3d();
    let kernel = FemKernel::paper_instance();
    println!(
        "\nFEM boundary exchange on the simulated {} ({} words per neighbour, congestion {:.0}):",
        t3d.name,
        kernel.exchange_words(),
        kernel.congestion(&t3d).expect("valid decomposition")
    );
    for method in [
        CommMethod::Pvm,
        CommMethod::BufferPacking,
        CommMethod::Chained,
    ] {
        let m = kernel.measure(&t3d, method).expect("simulates");
        assert!(m.verified);
        println!("  {:<15} {}", m.method, m.per_node);
    }
    println!("(paper, Table 6: PVM3 ~2, buffer packing 12.2, chained 14.2 MB/s per node)");
}
