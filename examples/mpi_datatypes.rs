//! MPI derived datatypes, thirty years early.
//!
//! ```text
//! cargo run --release --example mpi_datatypes
//! ```
//!
//! The paper's buffer-packing vs chained question is exactly MPI's
//! `MPI_Pack` vs derived-datatype question: should non-contiguous data be
//! packed by the processor, or described to the communication system and
//! moved directly? This example answers it on the simulated machines for
//! three classic datatypes.

use memcomm::commops::{run_datatype_exchange, Datatype, DatatypeMethod, ExchangeConfig};
use memcomm::machines::Machine;

fn main() {
    let cfg = ExchangeConfig::default();
    // Three classic layouts:
    let cases = [
        (
            "matrix rows -> rows (contiguous)",
            Datatype::contiguous(8192),
            Datatype::contiguous(8192),
        ),
        (
            "matrix rows -> columns (vector, the transpose)",
            Datatype::contiguous(1024),
            Datatype::vector(1024, 1, 1024),
        ),
        (
            "3-word tensors every 24 words -> packed (block vector)",
            Datatype::vector(1024, 3, 24),
            Datatype::contiguous(3072),
        ),
        (
            "jagged boundary (indexed) -> packed",
            Datatype::indexed((0..512).map(|i| i * 9 + (i % 5)).collect(), vec![4; 512]),
            Datatype::contiguous(2048),
        ),
    ];

    for machine in [Machine::t3d(), Machine::paragon()] {
        println!("== {} ==", machine.name);
        for (name, send, recv) in &cases {
            let pack = run_datatype_exchange(&machine, send, recv, DatatypeMethod::Pack, &cfg)
                .expect("simulates");
            let direct = run_datatype_exchange(&machine, send, recv, DatatypeMethod::Direct, &cfg)
                .expect("simulates");
            assert!(pack.verified && direct.verified, "{name}: data corrupted");
            let p = pack.per_node(machine.clock()).as_mbps();
            let d = direct.per_node(machine.clock()).as_mbps();
            println!(
                "  {name}\n    send pattern {} -> recv pattern {}: pack {p:>5.1} MB/s, \
                 direct {d:>5.1} MB/s ({:.2}x)",
                send.access_pattern(),
                recv.access_pattern(),
                d / p
            );
        }
        println!();
    }
    println!(
        "Datatype-aware (chained) transfers win for every layout — the paper's\n\
         conclusion, restated as the reason MPI implementations should avoid\n\
         internal packing when the network interface can gather and scatter."
    );
}
